package sim

import (
	"strings"
	"testing"
)

func TestROCNearPerfectAtHighSNR(t *testing.T) {
	res, err := ROC(Config{Seed: 8, SNRsDB: []float64{15}, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.99 {
		t.Errorf("AUC = %g, want ≈ 1 at 15 dB", res.AUC)
	}
	if len(res.Points) < 10 {
		t.Errorf("only %d ROC points", len(res.Points))
	}
	// Curve endpoints: (0,0) and (1,1) must both appear.
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if first.FalsePositiveRate != 0 || last.FalsePositiveRate != 1 {
		t.Errorf("FPR endpoints %g..%g", first.FalsePositiveRate, last.FalsePositiveRate)
	}
	if !strings.Contains(res.Render().Markdown(), "AUC") {
		t.Error("render missing AUC")
	}
	if !strings.Contains(res.CSV(), "threshold,tpr,fpr") {
		t.Error("CSV header missing")
	}
	if _, err := ROC(Config{Seed: 8, SNRsDB: []float64{15}, Trials: -1}); err == nil {
		t.Error("accepted 0 samples")
	}
}

func TestROCMonotone(t *testing.T) {
	res, err := ROC(Config{Seed: 9, SNRsDB: []float64{11}, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].TruePositiveRate < res.Points[i-1].TruePositiveRate-1e-12 {
			t.Fatalf("TPR not monotone at %d", i)
		}
	}
}

func TestRocFromSamplesValidation(t *testing.T) {
	if _, err := rocFromSamples(10, nil, []float64{1}); err == nil {
		t.Error("accepted empty authentic set")
	}
	if _, err := rocFromSamples(10, []float64{0.1}, nil); err == nil {
		t.Error("accepted empty emulated set")
	}
	// Perfectly separated toy data → AUC 1.
	res, err := rocFromSamples(10, []float64{0.1, 0.2}, []float64{0.9, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC != 1 {
		t.Errorf("toy AUC = %g", res.AUC)
	}
}

func TestEvasion(t *testing.T) {
	res, err := Evasion(Config{Seed: 10, SNRsDB: []float64{15}, Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 6 {
		t.Fatalf("%d variants", len(res.Variants))
	}
	byName := map[string]int{}
	for i, v := range res.Variants {
		byName[v] = i
	}
	base := byName["paper attack (7 bins, 64-QAM)"]
	wide := byName["25 kept bins"]
	ideal := byName["no quantization (idealized)"]
	// Every variant must still decode at 15 dB.
	for i, v := range res.Variants {
		if res.DecodeRate[i] < 0.6 {
			t.Errorf("variant %q decode rate %g", v, res.DecodeRate[i])
		}
	}
	// Better emulation shrinks the footprint.
	if res.MeanD2[wide] >= res.MeanD2[base] {
		t.Errorf("25-bin D² %g not below 7-bin %g", res.MeanD2[wide], res.MeanD2[base])
	}
	if res.MeanD2[ideal] >= res.MeanD2[base] {
		t.Errorf("unquantized D² %g not below baseline %g", res.MeanD2[ideal], res.MeanD2[base])
	}
	// The paper's attack is detected.
	if !res.Detected[base] {
		t.Error("baseline attack not detected")
	}
	if !strings.Contains(res.Render().Markdown(), "Evasion") {
		t.Error("render missing title")
	}
	if _, err := Evasion(Config{Seed: 10, SNRsDB: []float64{15}, Trials: -1}); err == nil {
		t.Error("accepted 0 trials")
	}
}

func TestAMCAccuracyImprovesWithSNR(t *testing.T) {
	res, err := AMC(Config{Seed: 11, SNRsDB: []float64{5, 20}, Samples: 2000, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	low := res.Matrices[0].Accuracy()
	high := res.Matrices[1].Accuracy()
	if high < low {
		t.Errorf("accuracy fell with SNR: %g → %g", low, high)
	}
	if high < 0.8 {
		t.Errorf("accuracy at 20 dB = %g, too low", high)
	}
	// BPSK (real family) is essentially never confused at high SNR.
	if ra := res.Matrices[1].RowAccuracy("BPSK"); ra < 0.99 {
		t.Errorf("BPSK recall at 20 dB = %g", ra)
	}
	if !strings.Contains(res.Render().Markdown(), "AMC") {
		t.Error("render missing title")
	}
	if _, err := AMC(Config{Seed: 11, SNRsDB: []float64{10}, Samples: 10, Trials: 4}); err == nil {
		t.Error("accepted tiny sample count")
	}
}

func TestCSMAScenario(t *testing.T) {
	res, err := CSMAScenario(Config{Seed: 12, Trials: 100}, []float64{0, 0.3, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate[0] != 1 {
		t.Errorf("idle medium success = %g", res.SuccessRate[0])
	}
	if res.SuccessRate[2] >= res.SuccessRate[0] {
		t.Errorf("90%% duty success %g not below idle", res.SuccessRate[2])
	}
	if res.MeanDelayUs[2] <= res.MeanDelayUs[0] {
		t.Errorf("delay did not grow with contention: %v", res.MeanDelayUs)
	}
	if _, err := CSMAScenario(Config{Seed: 12, Trials: 10}, []float64{2}); err == nil {
		t.Error("accepted duty cycle > 1")
	}
	if _, err := CSMAScenario(Config{Seed: 12, Trials: -1}, []float64{0.5}); err == nil {
		t.Error("accepted 0 trials")
	}
	if !strings.Contains(res.Render().Markdown(), "CSMA") {
		t.Error("render missing title")
	}
}
