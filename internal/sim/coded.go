package sim

import (
	"fmt"

	"hideseek/internal/emulation"
	"hideseek/internal/runner"
	"hideseek/internal/wifi"
	"hideseek/internal/zigbee"
)

// CodedHitRatesResult quantifies how much of the target QAM sequence each
// standards-compliance level reproduces: the paper's idealized attack
// (preprocessing ignored), the unpunctured rate-1/2 coded model, and full
// frames at each QAM-bearing rate.
type CodedHitRatesResult struct {
	Models     []string
	HitRate    []float64
	VictimOK   []bool
	PayloadLen int
}

// CodedHitRates runs every attacker model on the same observation and
// reports target hit rate plus whether the victim still decodes (nil
// payload: "00000"). Deterministic; cfg is accepted for API uniformity.
func CodedHitRates(_ Config, payload []byte) (*CodedHitRatesResult, error) {
	if payload == nil {
		payload = []byte("00000")
	}
	tx := zigbee.NewTransmitter()
	obs, err := tx.TransmitPSDU(payload)
	if err != nil {
		return nil, err
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		return nil, err
	}
	res, err := em.Emulate(obs)
	if err != nil {
		return nil, err
	}
	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		return nil, err
	}
	decodes := func(wave4M []complex128) bool {
		rec, err := rx.Receive(wave4M)
		return err == nil && payloadMatches(rec, payload)
	}

	out := &CodedHitRatesResult{PayloadLen: len(payload)}

	// Idealized (paper simulation): QAM points go straight to the IFFT.
	out.Models = append(out.Models, "idealized (preprocessing ignored)")
	out.HitRate = append(out.HitRate, 1)
	out.VictimOK = append(out.VictimOK, decodes(res.Emulated4M))

	// Unpunctured rate-1/2 coded model.
	wtx, err := wifi.NewTransmitter(wifi.QAM64, 0x5D)
	if err != nil {
		return nil, err
	}
	coded, err := emulation.CodedEmulation(res, wtx)
	if err != nil {
		return nil, err
	}
	out.Models = append(out.Models, "coded 64-QAM rate 1/2")
	out.HitRate = append(out.HitRate, coded.TargetHitRate)
	out.VictimOK = append(out.VictimOK, decodes(coded.AtVictim4M))

	// Full frames at each QAM-bearing rate — independent, so fan them out.
	rates := []wifi.Rate{wifi.Rate12, wifi.Rate24, wifi.Rate36, wifi.Rate48, wifi.Rate54}
	type rateScore struct {
		hitRate  float64
		victimOK bool
	}
	scores, err := runner.Map(pool(), runner.Sweep{}, len(rates),
		func() (*zigbee.Receiver, error) {
			return zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
		},
		func(t runner.Trial, wrx *zigbee.Receiver) (rateScore, error) {
			r := rates[t.Index]
			ff, err := emulation.FullFrameEmulation(res, r, 0x5D)
			if err != nil {
				return rateScore{}, fmt.Errorf("sim: full frame at rate %d: %w", r, err)
			}
			rec, err := wrx.Receive(ff.OnAirAtVictim4M)
			return rateScore{
				hitRate:  ff.TargetHitRate,
				victimOK: err == nil && payloadMatches(rec, payload),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, r := range rates {
		out.Models = append(out.Models, fmt.Sprintf("full frame @ %d Mb/s", int(r)))
		out.HitRate = append(out.HitRate, scores[i].hitRate)
		out.VictimOK = append(out.VictimOK, scores[i].victimOK)
	}
	return out, nil
}

// Render emits the coded-emulation rows.
func (r *CodedHitRatesResult) Render() *Table {
	t := NewTable(fmt.Sprintf("Coded Emulation — Standards Compliance vs Attack Quality (%d-byte payload)", r.PayloadLen),
		"attacker model", "target hit rate", "victim decodes")
	for i, m := range r.Models {
		t.AddRowf(m, r.HitRate[i], r.VictimOK[i])
	}
	return t
}
