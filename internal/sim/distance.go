package sim

import (
	"fmt"
	"math"
	"math/rand"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/runner"
	"hideseek/internal/zigbee"
)

// RadioConfig models one victim radio for the distance experiments.
type RadioConfig struct {
	// Name appears in reports ("USRP", "CC26x2R1").
	Name string
	// Mode selects the despreader: the USRP/GNU Radio chain decodes from
	// the FM discriminator; the commodity chip's "stronger demodulation
	// functions" (Sec. VII-D) are modeled as coherent soft max-correlation
	// despreading.
	Mode zigbee.DespreadMode
	// FrontEndGainDB adds receiver implementation gain (better LNA and
	// antenna on the commodity board).
	FrontEndGainDB float64
}

// USRPReceiver models the paper's USRP N210 victim.
func USRPReceiver() RadioConfig {
	return RadioConfig{Name: "USRP", Mode: zigbee.FMDiscriminator}
}

// CC26x2R1Receiver models the TI LaunchPad victim.
func CC26x2R1Receiver() RadioConfig {
	return RadioConfig{Name: "CC26x2R1", Mode: zigbee.SoftCorrelation, FrontEndGainDB: 3}
}

// DistanceLinkBudget fixes the link parameters of the Fig. 14 / Table V
// testbed substitute.
type DistanceLinkBudget struct {
	// SNRAt1mDB is the receive SNR at the 1 m reference (before front-end
	// gain), standing in for the 0.75 USRP power gains of Sec. VII-D.
	SNRAt1mDB float64
	// PathLoss is the log-distance model.
	PathLoss channel.PathLossModel
}

// DefaultLinkBudget returns values tuned so the hard-threshold receiver
// decodes reliably to ~5 m and fails by 8 m while the commodity model
// reaches 8 m — the paper's Fig. 14 shape.
func DefaultLinkBudget() DistanceLinkBudget {
	pl := channel.DefaultIndoorPathLoss()
	pl.ShadowSigmaDB = 1
	return DistanceLinkBudget{SNRAt1mDB: 35, PathLoss: pl}
}

// snrAt returns the per-trial receive SNR at distance d for a radio.
func (b DistanceLinkBudget) snrAt(d float64, radio RadioConfig, rng interface {
	NormFloat64() float64
}) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("sim: distance %v must be positive", d)
	}
	loss, err := b.PathLoss.LossDB(d)
	if err != nil {
		return 0, err
	}
	ref, err := b.PathLoss.LossDB(b.PathLoss.RefDistance)
	if err != nil {
		return 0, err
	}
	shadow := rng.NormFloat64() * b.PathLoss.ShadowSigmaDB
	return b.SNRAt1mDB - (loss - ref) - shadow + radio.FrontEndGainDB, nil
}

// amplitudeAt converts a per-trial SNR back to the linear signal amplitude
// against the fixed noise floor N0 = 10^(−SNRAt1m/10): the waveform is
// attenuated rather than the noise grown, so RSSI behaves physically.
func (b DistanceLinkBudget) amplitudeAt(snrDB float64) float64 {
	return math.Pow(10, (snrDB-b.SNRAt1mDB)/20)
}

// Fig14Result reproduces Fig. 14: packet and symbol error rates vs
// distance for both waveform classes at one receiver model.
type Fig14Result struct {
	Radio     RadioConfig
	Distances []float64
	// Error rates indexed by distance.
	OriginalPER, OriginalSER []float64
	EmulatedPER, EmulatedSER []float64
	Packets                  int
	// MeanRSSIdB per distance (relative to unit TX power).
	MeanRSSIdB []float64
}

// Fig14 sweeps distance with the real-environment channel and counts
// packet/symbol errors over cfg.Trials transmissions per class (default
// 100). A zero budget selects DefaultLinkBudget; nil distances the paper's
// 1–8 m sweep.
func Fig14(cfg Config, radio RadioConfig, budget DistanceLinkBudget, distances []float64) (*Fig14Result, error) {
	seed := cfg.Seed
	packets := cfg.TrialsOr(100)
	if budget == (DistanceLinkBudget{}) {
		budget = DefaultLinkBudget()
	}
	if distances == nil {
		distances = []float64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if packets < 1 {
		return nil, fmt.Errorf("sim: packets %d < 1", packets)
	}
	payloads, err := Payloads(minInt(packets, 100))
	if err != nil {
		return nil, err
	}
	links, err := BuildLinks(payloads, emulation.AttackConfig{})
	if err != nil {
		return nil, err
	}
	type packetScore struct {
		perO, serO, perE, serE, rssi float64
	}
	res := &Fig14Result{Radio: radio, Distances: distances, Packets: packets}
	for di, d := range distances {
		d := d
		scores, err := runner.Map(pool(), runner.Sweep{Seed: seed, Base: sweepBase(regionFig14, di)}, packets,
			func() (*zigbee.Receiver, error) {
				return zigbee.NewReceiver(zigbee.ReceiverConfig{Mode: radio.Mode, SyncThreshold: 0.3})
			},
			func(t runner.Trial, rx *zigbee.Receiver) (packetScore, error) {
				link := links[t.Index%len(links)]
				snr, err := budget.snrAt(d, radio, t.RNG)
				if err != nil {
					return packetScore{}, err
				}
				// Real environment: path-loss attenuation, slow LoS-dominated
				// fading and phase drift, then the fixed receiver noise floor.
				gain := channel.NewGain(complex(budget.amplitudeAt(snr), 0))
				mp, err := channel.NewRicianMultipath(2, 0.25, 8, t.RNG)
				if err != nil {
					return packetScore{}, err
				}
				doppler, err := channel.NewDopplerPhaseNoise(1e-4, t.RNG)
				if err != nil {
					return packetScore{}, err
				}
				awgn, err := channel.NewAWGN(budget.SNRAt1mDB, t.RNG)
				if err != nil {
					return packetScore{}, err
				}
				ch, err := channel.NewChain(gain, mp, doppler, awgn)
				if err != nil {
					return packetScore{}, err
				}

				rxO := ch.Apply(link.Original)
				rxE := ch.Apply(link.Emulated)
				var s packetScore
				s.rssi = channel.RSSI(rxO)
				s.perO, s.serO, _ = scoreReception(rx, rxO, link.Payload)
				s.perE, s.serE, _ = scoreReception(rx, rxE, link.Payload)
				return s, nil
			})
		if err != nil {
			return nil, err
		}
		var agg packetScore
		for _, s := range scores {
			agg.perO += s.perO
			agg.serO += s.serO
			agg.perE += s.perE
			agg.serE += s.serE
			agg.rssi += s.rssi
		}
		n := float64(packets)
		res.OriginalPER = append(res.OriginalPER, agg.perO/n)
		res.EmulatedPER = append(res.EmulatedPER, agg.perE/n)
		res.OriginalSER = append(res.OriginalSER, agg.serO/n)
		res.EmulatedSER = append(res.EmulatedSER, agg.serE/n)
		res.MeanRSSIdB = append(res.MeanRSSIdB, agg.rssi/n)
	}
	return res, nil
}

// scoreReception returns (packetError, symbolErrorRate, symbolsCounted).
func scoreReception(rx *zigbee.Receiver, wave []complex128, want []byte) (float64, float64, int) {
	rec, err := rx.Receive(wave)
	if err != nil || !payloadMatches(rec, want) {
		// Packet lost; estimate symbol errors from whatever was despread.
		ser := 1.0
		if rec != nil && len(rec.Results) > 0 {
			errs := 0
			for _, r := range rec.Results {
				if r.Dropped {
					errs++
				}
			}
			ser = float64(errs) / float64(len(rec.Results))
			if ser == 0 {
				// Frame failed for another reason (sync, FCS) — count the
				// packet, but symbols were fine.
				return 1, 0, len(rec.Results)
			}
		}
		n := 0
		if rec != nil {
			n = len(rec.Results)
		}
		return 1, ser, n
	}
	errs := 0
	for _, r := range rec.Results {
		if r.Dropped {
			errs++
		}
	}
	return 0, float64(errs) / float64(len(rec.Results)), len(rec.Results)
}

// Render emits the Fig. 14 rows for this receiver.
func (r *Fig14Result) Render() *Table {
	t := NewTable(fmt.Sprintf("Fig. 14 — Attack Performance vs Distance (receiver: %s, %d packets)", r.Radio.Name, r.Packets),
		"distance (m)", "orig PER", "orig SER", "emul PER", "emul SER", "mean RSSI (dB)")
	for i, d := range r.Distances {
		t.AddRowf(d, r.OriginalPER[i], r.OriginalSER[i], r.EmulatedPER[i], r.EmulatedSER[i], r.MeanRSSIdB[i])
	}
	return t
}

// Table5Result reproduces Table V: averaged D²E vs distance in the real
// environment, with the per-class separation that admits a threshold in
// the paper's [0.1, 1] band (ours is correspondingly lower; see
// EXPERIMENTS.md).
type Table5Result struct {
	Distances []float64
	Original  []float64
	Emulated  []float64
	// SuggestedQ is the midpoint threshold from these measurements.
	SuggestedQ float64
	Samples    int
}

// Table5 averages D² per distance over cfg.Trials receptions per class
// (default 100) using the real-environment channel and the
// |C40|/mean-removed detector. A zero budget selects DefaultLinkBudget;
// nil distances the paper's 1–6 m sweep.
func Table5(cfg Config, budget DistanceLinkBudget, distances []float64) (*Table5Result, error) {
	seed := cfg.Seed
	samples := cfg.TrialsOr(100)
	if budget == (DistanceLinkBudget{}) {
		budget = DefaultLinkBudget()
	}
	if distances == nil {
		distances = []float64{1, 2, 3, 4, 5, 6}
	}
	if samples < 1 {
		return nil, fmt.Errorf("sim: samples %d < 1", samples)
	}
	payloads, err := Payloads(1)
	if err != nil {
		return nil, err
	}
	links, err := BuildLinks(payloads, emulation.AttackConfig{})
	if err != nil {
		return nil, err
	}
	link := links[0]
	// Chip extraction for the defense uses the robust coherent receiver —
	// the despread mode only matters for Fig. 14's decode comparison; the
	// defense taps the discriminator chips regardless.
	radio := USRPReceiver()
	type table5Scratch struct {
		rx  *zigbee.Receiver
		det *emulation.Detector
	}
	type d2Pair struct {
		o, e float64
		ok   bool
	}
	res := &Table5Result{Distances: distances, Samples: samples}
	var maxO, minE = 0.0, math.Inf(1)
	for di, d := range distances {
		d := d
		pairs, err := runner.Map(pool(), runner.Sweep{Seed: seed, Base: sweepBase(regionTable5, di)}, samples,
			func() (*table5Scratch, error) {
				rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{Mode: zigbee.HardThreshold, SyncThreshold: 0.3})
				if err != nil {
					return nil, err
				}
				det, err := emulation.NewDetector(emulation.DefenseConfig{RemoveMean: true, UseAbsC40: true})
				if err != nil {
					return nil, err
				}
				return &table5Scratch{rx: rx, det: det}, nil
			},
			func(t runner.Trial, sc *table5Scratch) (d2Pair, error) {
				snr, err := budget.snrAt(d, radio, t.RNG)
				if err != nil {
					return d2Pair{}, err
				}
				ch, err := realChannelAt(t.RNG, snr)
				if err != nil {
					return d2Pair{}, err
				}
				recO, err := sc.rx.Receive(ch.Apply(link.Original))
				if err != nil {
					return d2Pair{}, nil
				}
				recE, err := sc.rx.Receive(ch.Apply(link.Emulated))
				if err != nil {
					return d2Pair{}, nil
				}
				vo, err := sc.det.AnalyzeReception(recO)
				if err != nil {
					return d2Pair{}, nil
				}
				ve, err := sc.det.AnalyzeReception(recE)
				if err != nil {
					return d2Pair{}, nil
				}
				return d2Pair{o: vo.DistanceSquared, e: ve.DistanceSquared, ok: true}, nil
			})
		if err != nil {
			return nil, err
		}
		var sumO, sumE float64
		count := 0
		for _, p := range pairs {
			if !p.ok {
				continue
			}
			sumO += p.o
			sumE += p.e
			count++
		}
		if count == 0 {
			return nil, fmt.Errorf("sim: no successful receptions at %g m", d)
		}
		o := sumO / float64(count)
		e := sumE / float64(count)
		res.Original = append(res.Original, o)
		res.Emulated = append(res.Emulated, e)
		maxO = math.Max(maxO, o)
		minE = math.Min(minE, e)
	}
	res.SuggestedQ = (maxO + minE) / 2
	return res, nil
}

// realChannelAt builds a fresh real-environment chain from an existing RNG.
func realChannelAt(rng *rand.Rand, snrDB float64) (channel.Channel, error) {
	mp, err := channel.NewRicianMultipath(3, 0.35, 8, rng)
	if err != nil {
		return nil, err
	}
	doppler, err := channel.NewDopplerPhaseNoise(2e-4, rng)
	if err != nil {
		return nil, err
	}
	cfo, err := channel.NewCFO(60+rng.Float64()*80, zigbee.SampleRate, rng.Float64()*6.28)
	if err != nil {
		return nil, err
	}
	awgn, err := channel.NewAWGN(snrDB, rng)
	if err != nil {
		return nil, err
	}
	return channel.NewChain(mp, doppler, cfo, awgn)
}

// Render emits the Table V rows.
func (r *Table5Result) Render() *Table {
	t := NewTable(fmt.Sprintf("Table V — Averaged D²E vs Distance, Real Environment (%d samples/class)", r.Samples),
		"distance (m)", "ZigBee waveform", "Emulated waveform")
	for i, d := range r.Distances {
		t.AddRowf(d, r.Original[i], r.Emulated[i])
	}
	t.AddRow("suggested Q", fmt.Sprintf("%.4f", r.SuggestedQ), "")
	return t
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
