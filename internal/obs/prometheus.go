package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled on the
// stdlib. Mapping from obs instruments:
//
//   - Counter  "stream.frames"   → hideseek_stream_frames_total (counter)
//   - Timer    "stream.decode"   → hideseek_stream_decode_seconds (summary:
//     _sum in seconds, _count)
//   - Histogram "stream.scan_ns" → hideseek_stream_scan_ns (histogram:
//     cumulative _bucket{le=...} series from the log buckets, _sum,
//     _count) plus rolling-window quantile gauges
//     hideseek_stream_scan_ns_p50{window="60s"} etc. for the non-empty
//     windows.
//   - Gauge "calib_threshold.zigbee" → hideseek_calib_threshold_zigbee
//     (gauge): last set value, no suffix.
//
// Histogram values keep the unit their obs name declares (_ns, _us,
// plain depth); only timers are converted, because their unit (duration)
// is intrinsic. Runtime gauges are appended under hideseek_go_*.

// PrometheusContentType is the Content-Type for /metrics responses.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a dotted instrument name onto the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) under the hideseek_ namespace.
func promName(name string) string {
	b := []byte("hideseek_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b = append(b, byte(r))
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promFloat renders a sample value; Prometheus spells infinities with an
// explicit sign.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter accumulates the first write error so the render loop stays
// linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, promFloat(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, promFloat(v))
}

// WritePrometheus renders the snapshot in the Prometheus text format.
// Families are emitted in sorted instrument order (counters, timers,
// histograms, then runtime gauges), so output is diff-stable for a
// quiesced registry.
func WritePrometheus(w io.Writer, s Snapshot) error {
	p := &promWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		fam := promName(name) + "_total"
		p.printf("# TYPE %s counter\n", fam)
		p.sample(fam, "", float64(s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		fam := promName(name) + "_seconds"
		p.printf("# TYPE %s summary\n", fam)
		p.sample(fam+"_sum", "", t.TotalMS/1e3)
		p.sample(fam+"_count", "", float64(t.Count))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fam := promName(name)
		p.printf("# TYPE %s histogram\n", fam)
		if len(h.Buckets) == 0 {
			// Never observed: a histogram family still needs its +Inf
			// bucket to be well-formed.
			p.sample(fam+"_bucket", `le="+Inf"`, 0)
		}
		for _, b := range h.Buckets {
			p.sample(fam+"_bucket", fmt.Sprintf("le=%q", promFloat(b.UpperBound)), float64(b.Count))
		}
		p.sample(fam+"_sum", "", h.Sum)
		p.sample(fam+"_count", "", float64(h.Count))
		win, ok := s.Windows[name]
		if !ok {
			continue
		}
		for _, q := range []struct {
			suffix string
			pick   func(HistogramStats) float64
		}{
			{"_p50", func(st HistogramStats) float64 { return st.P50 }},
			{"_p95", func(st HistogramStats) float64 { return st.P95 }},
			{"_p99", func(st HistogramStats) float64 { return st.P99 }},
		} {
			wrote := false
			for _, ws := range []struct {
				label string
				stats HistogramStats
			}{
				{promWindowLabel(WindowShort), win.Last60s},
				{promWindowLabel(WindowLong), win.Last120s},
			} {
				if ws.stats.Count == 0 {
					continue
				}
				if !wrote {
					p.printf("# TYPE %s gauge\n", fam+q.suffix)
					wrote = true
				}
				p.sample(fam+q.suffix, fmt.Sprintf("window=%q", ws.label), q.pick(ws.stats))
			}
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		fam := promName(name)
		p.printf("# TYPE %s gauge\n", fam)
		p.sample(fam, "", s.Gauges[name])
	}
	writeAlertsProm(p, s.Alerts)
	writeRuntimeProm(p, s.Runtime)
	return p.err
}

// writeAlertsProm renders the SLO rule states in the Prometheus alerting
// convention: an ALERTS{alertname,severity,state} series per rule that
// is pending or firing, plus a hideseek_slo_budget_remaining{rule} gauge
// for every rule so dashboards can plot budget before anything fires.
// Rules whose names would break the label grammar are skipped.
func writeAlertsProm(p *promWriter, alerts []AlertSample) {
	if len(alerts) == 0 {
		return
	}
	active := false
	for _, a := range alerts {
		if validAlertName(a.Name) && (a.State == "pending" || a.State == "firing") {
			active = true
			break
		}
	}
	if active {
		p.printf("# TYPE ALERTS gauge\n")
		for _, a := range alerts {
			if !validAlertName(a.Name) || (a.State != "pending" && a.State != "firing") {
				continue
			}
			p.sample("ALERTS", fmt.Sprintf("alertname=%q,severity=%q,state=%q", a.Name, a.Severity, a.State), 1)
		}
	}
	wrote := false
	for _, a := range alerts {
		if !validAlertName(a.Name) {
			continue
		}
		if !wrote {
			p.printf("# TYPE hideseek_slo_budget_remaining gauge\n")
			wrote = true
		}
		p.sample("hideseek_slo_budget_remaining", fmt.Sprintf("rule=%q", a.Name), a.BudgetRemaining)
	}
}

func promWindowLabel(d time.Duration) string {
	return strconv.Itoa(int(d/time.Second)) + "s"
}

// writeRuntimeProm appends the Go runtime gauges.
func writeRuntimeProm(p *promWriter, r RuntimeStats) {
	gauges := []struct {
		name string
		typ  string
		v    float64
	}{
		{"hideseek_go_goroutines", "gauge", float64(r.Goroutines)},
		{"hideseek_go_heap_alloc_bytes", "gauge", float64(r.HeapAllocBytes)},
		{"hideseek_go_heap_sys_bytes", "gauge", float64(r.HeapSysBytes)},
		{"hideseek_go_gc_cycles_total", "counter", float64(r.NumGC)},
		{"hideseek_go_gc_pause_p50_seconds", "gauge", r.GCPauseP50US / 1e6},
		{"hideseek_go_gc_pause_p99_seconds", "gauge", r.GCPauseP99US / 1e6},
	}
	for _, g := range gauges {
		p.printf("# TYPE %s %s\n", g.name, g.typ)
		p.sample(g.name, "", g.v)
	}
}
