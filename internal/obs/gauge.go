package obs

import (
	"math"
	"sync/atomic"
)

// Gauge is a named last-value instrument: a float64 set point (a
// calibrated threshold, a table size) rather than a monotone tally.
// Writes and reads are single atomic operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v as the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value Set (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// G returns the named gauge from the standard registry.
func G(name string) *Gauge { return std.Gauge(name) }
