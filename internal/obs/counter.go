package obs

import "sync/atomic"

// Counter is a monotonically named atomic event count. The zero value is
// ready to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauge-style use, but manifest
// consumers treat counters as monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }
