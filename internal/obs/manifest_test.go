package obs

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleManifest() *Manifest {
	m := NewManifest("table2", 1, 4)
	m.TrialsTotal = 30
	m.WallMS = 123.5
	m.TrialsPerSec = 242.9
	m.Experiments = []ExperimentStats{
		{Name: "table2", WallMS: 123.5, Trials: 30, TrialsPerSec: 242.9},
	}
	m.Snapshot = Snapshot{
		Counters: map[string]int64{"runner.trials": 30},
		Timers: map[string]TimerStats{
			"emulation.emulate": {Count: 1, TotalMS: 2.5, MeanUS: 2500},
			"zigbee.sync":       {Count: 30, TotalMS: 9.1, MeanUS: 303},
			"zigbee.despread":   {Count: 60, TotalMS: 40.2, MeanUS: 670},
		},
		Histograms: map[string]HistogramStats{
			"runner.trial_ns": {Count: 30, Min: 1e6, Max: 9e6, Mean: 4e6, P50: 3.9e6, P95: 8.2e6, P99: 8.9e6},
		},
	}
	return m
}

// TestManifestRoundTrip is the satellite guarantee: a manifest survives
// encoding/json unchanged, and the strict decoder accepts what WriteFile
// produced.
func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	if err := m.Validate(); err != nil {
		t.Fatalf("sample manifest invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped manifest invalid: %v", err)
	}
	// time.Time survives RFC 3339 with UTC normalization; compare directly.
	if !m.CreatedAt.Equal(got.CreatedAt) {
		t.Errorf("CreatedAt %v != %v", got.CreatedAt, m.CreatedAt)
	}
	m.CreatedAt, got.CreatedAt = time.Time{}, time.Time{}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip changed manifest:\nwrote %+v\nread  %+v", m, got)
	}
}

func TestManifestStrictDecodeRejectsUnknownFields(t *testing.T) {
	data, err := json.Marshal(map[string]any{"schema": ManifestSchema, "bogus": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(data); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestManifestValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Manifest)
		want   string
	}{
		{"wrong schema", func(m *Manifest) { m.Schema = "v0" }, "schema"},
		{"no command", func(m *Manifest) { m.Command = "" }, "command"},
		{"zero workers", func(m *Manifest) { m.Workers = 0 }, "workers"},
		{"no experiments", func(m *Manifest) { m.Experiments = nil }, "experiments"},
		{"missing trials/s", func(m *Manifest) { m.Experiments[0].TrialsPerSec = 0 }, "trials/s"},
		{"too few timers", func(m *Manifest) { m.Timers = nil }, "timers"},
		{"unknown kind", func(m *Manifest) { m.Kind = "cron" }, "kind"},
	} {
		m := sampleManifest()
		tc.mutate(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
}

// serviceManifest models what hideseekd flushes on shutdown: no
// experiment table, a stage-timer snapshot from the streaming pipeline.
func serviceManifest() *Manifest {
	m := NewManifest("hideseekd", 0, 8)
	m.Kind = KindService
	m.WallMS = 60000
	m.Protocols = []string{"zigbee", "lora"}
	m.Snapshot = Snapshot{
		Counters: map[string]int64{"stream.frames": 12, "stream.dropped_frames": 0},
		Timers: map[string]TimerStats{
			"stream.scan":   {Count: 12, TotalMS: 4.2, MeanUS: 350},
			"stream.decode": {Count: 12, TotalMS: 9.9, MeanUS: 825},
			"stream.detect": {Count: 12, TotalMS: 1.2, MeanUS: 100},
		},
		Histograms: map[string]HistogramStats{},
	}
	return m
}

// TestServiceManifestValidates covers the daemon-produced manifest shape:
// it must pass validation without an experiment table, and the strict
// decoder must round-trip the kind field.
func TestServiceManifestValidates(t *testing.T) {
	m := serviceManifest()
	if err := m.Validate(); err != nil {
		t.Fatalf("service manifest invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "service.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindService {
		t.Errorf("Kind %q after round trip, want %q", got.Kind, KindService)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped service manifest invalid: %v", err)
	}
	// Negative wall time is rejected.
	m.WallMS = -1
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "wall") {
		t.Errorf("negative service wall time not rejected: %v", err)
	}
	// The served protocol set is mandatory for service manifests and must
	// be well-formed for all kinds.
	m = serviceManifest()
	m.Protocols = nil
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "protocols") {
		t.Errorf("service manifest without protocols not rejected: %v", err)
	}
	m = serviceManifest()
	m.Protocols = []string{"zigbee", "zigbee"}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate protocol not rejected: %v", err)
	}
	m = serviceManifest()
	m.Protocols = []string{""}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "empty protocol") {
		t.Errorf("empty protocol name not rejected: %v", err)
	}
	// Experiment manifests must still demand their experiment table.
	e := sampleManifest()
	e.Experiments = nil
	if err := e.Validate(); err == nil {
		t.Error("experiment manifest without experiments accepted")
	}
}
