package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// ManifestSchema identifies the manifest layout; bump on breaking change.
const ManifestSchema = "hideseek.run-manifest/v1"

// Manifest kinds. The zero value (KindExperiment, serialized as an
// absent "kind" field) is a batch experiment run — the original v1
// layout, so every pre-existing manifest decodes as an experiment.
// KindService marks a manifest flushed by a long-running daemon
// (hideseekd) on shutdown: no experiment table, but the same instrument
// snapshot.
const (
	KindExperiment = ""
	KindService    = "service"
)

// ExperimentStats records one experiment's share of a run.
type ExperimentStats struct {
	Name         string  `json:"name"`
	WallMS       float64 `json:"wall_ms"`
	Trials       int64   `json:"trials"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// Manifest is the structured record of one experiment run: identity
// (seed, workers), totals, per-experiment wall time and throughput, and
// the full instrument snapshot. It is what the -manifest flag writes and
// what cmd/manifestcheck validates.
type Manifest struct {
	Schema       string            `json:"schema"`
	Kind         string            `json:"kind,omitempty"`
	CreatedAt    time.Time         `json:"created_at"`
	GoVersion    string            `json:"go_version"`
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	Command      string            `json:"command"`
	Seed         int64             `json:"seed"`
	Workers      int               `json:"workers"`
	Protocols    []string          `json:"protocols,omitempty"`
	TrialsTotal  int64             `json:"trials_total"`
	WallMS       float64           `json:"wall_ms"`
	TrialsPerSec float64           `json:"trials_per_sec"`
	Experiments  []ExperimentStats `json:"experiments"`
	Snapshot
}

// NewManifest stamps a manifest with schema and build identity; the
// caller fills in run identity, experiment stats, and the snapshot.
func NewManifest(command string, seed int64, workers int) *Manifest {
	return &Manifest{
		Schema:    ManifestSchema,
		CreatedAt: time.Now().UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Command:   command,
		Seed:      seed,
		Workers:   workers,
	}
}

// Validate is the schema check: it confirms the manifest a tool just read
// (or is about to write) carries everything downstream consumers rely on.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("obs: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Command == "" {
		return fmt.Errorf("obs: manifest has no command")
	}
	if m.Workers < 1 {
		return fmt.Errorf("obs: manifest workers %d < 1", m.Workers)
	}
	if m.CreatedAt.IsZero() {
		return fmt.Errorf("obs: manifest has no creation time")
	}
	switch m.Kind {
	case KindExperiment:
		if len(m.Experiments) == 0 {
			return fmt.Errorf("obs: manifest lists no experiments")
		}
		for _, e := range m.Experiments {
			if e.Name == "" {
				return fmt.Errorf("obs: manifest experiment with empty name")
			}
			if e.Trials > 0 && e.TrialsPerSec <= 0 {
				return fmt.Errorf("obs: experiment %q ran %d trials but reports %g trials/s", e.Name, e.Trials, e.TrialsPerSec)
			}
		}
	case KindService:
		// A daemon manifest has no experiment table; its run identity is
		// the service's wall time, the protocol set it served, and the
		// instrument snapshot.
		if m.WallMS < 0 {
			return fmt.Errorf("obs: service manifest reports negative wall time %g ms", m.WallMS)
		}
		if len(m.Protocols) == 0 {
			return fmt.Errorf("obs: service manifest lists no protocols")
		}
	default:
		return fmt.Errorf("obs: unknown manifest kind %q", m.Kind)
	}
	seen := make(map[string]bool, len(m.Protocols))
	for _, p := range m.Protocols {
		if p == "" {
			return fmt.Errorf("obs: manifest lists an empty protocol name")
		}
		if seen[p] {
			return fmt.Errorf("obs: manifest lists protocol %q twice", p)
		}
		seen[p] = true
	}
	if len(m.Timers) < 3 {
		return fmt.Errorf("obs: manifest has %d stage timers, want at least 3", len(m.Timers))
	}
	seenAlert := make(map[string]bool, len(m.Alerts))
	for _, a := range m.Alerts {
		if !validAlertName(a.Name) {
			return fmt.Errorf("obs: manifest alert with invalid name %q", a.Name)
		}
		if seenAlert[a.Name] {
			return fmt.Errorf("obs: manifest lists alert %q twice", a.Name)
		}
		seenAlert[a.Name] = true
		switch a.State {
		case "inactive", "pending", "firing", "resolved":
		default:
			return fmt.Errorf("obs: manifest alert %q has unknown state %q", a.Name, a.State)
		}
		if a.FiredTotal < 0 {
			return fmt.Errorf("obs: manifest alert %q has negative fired_total", a.Name)
		}
	}
	return nil
}

// WriteFile marshals the manifest (indented, trailing newline) to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and strictly decodes a manifest file: unknown fields
// are an error, so drift between writer and schema is caught in CI.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	return DecodeManifest(data)
}

// DecodeManifest strictly decodes manifest JSON.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: decoding manifest: %w", err)
	}
	return &m, nil
}
