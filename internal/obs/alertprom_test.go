package obs

import (
	"bytes"
	"strings"
	"testing"
)

// alertSnap renders a snapshot carrying the given alert samples.
func alertSnap(t *testing.T, alerts []AlertSample) string {
	t.Helper()
	r := NewRegistry()
	r.Counter("test.frames").Add(1)
	s := r.Snap()
	s.Alerts = alerts
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAlertsExposition: pending/firing rules render as ALERTS series,
// every valid rule renders a budget gauge, and the whole document
// passes the in-repo linter (the uppercase family name is legal).
func TestAlertsExposition(t *testing.T) {
	out := alertSnap(t, []AlertSample{
		{Name: "verdict_latency", Severity: "page", State: "firing", BudgetRemaining: 0},
		{Name: "drop_ratio", Severity: "page", State: "pending", BudgetRemaining: 0.1},
		{Name: "shed_burn", Severity: "ticket", State: "inactive", BudgetRemaining: 1},
		{Name: "calib_drift", Severity: "ticket", State: "resolved", BudgetRemaining: 1},
	})
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE ALERTS gauge",
		`ALERTS{alertname="verdict_latency",severity="page",state="firing"} 1`,
		`ALERTS{alertname="drop_ratio",severity="page",state="pending"} 1`,
		"# TYPE hideseek_slo_budget_remaining gauge",
		`hideseek_slo_budget_remaining{rule="verdict_latency"} 0`,
		`hideseek_slo_budget_remaining{rule="shed_burn"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q\n%s", want, out)
		}
	}
	// Quiet states expose no ALERTS series — only the budget gauge.
	for _, reject := range []string{
		`state="inactive"`,
		`state="resolved"`,
	} {
		if strings.Contains(out, reject) {
			t.Errorf("exposition leaks %q\n%s", reject, out)
		}
	}
}

// TestAlertsExpositionQuiet: all-quiet rules emit no ALERTS family at
// all (Prometheus convention: absence means nothing is wrong).
func TestAlertsExpositionQuiet(t *testing.T) {
	out := alertSnap(t, []AlertSample{
		{Name: "a", Severity: "page", State: "inactive", BudgetRemaining: 1},
	})
	if strings.Contains(out, "ALERTS{") {
		t.Errorf("quiet rules still render ALERTS:\n%s", out)
	}
	if !strings.Contains(out, `hideseek_slo_budget_remaining{rule="a"} 1`) {
		t.Errorf("quiet rule lost its budget gauge:\n%s", out)
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

// TestAlertsExpositionSkipsUnsafeNames: a rule name that would corrupt
// the label syntax is dropped from the exposition, not emitted broken.
func TestAlertsExpositionSkipsUnsafeNames(t *testing.T) {
	out := alertSnap(t, []AlertSample{
		{Name: `bad"name`, Severity: "page", State: "firing"},
		{Name: "bad,name", Severity: "page", State: "firing"},
		{Name: "good", Severity: "page", State: "firing"},
	})
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	if strings.Contains(out, "bad") {
		t.Errorf("unsafe rule name leaked into exposition:\n%s", out)
	}
	if !strings.Contains(out, `ALERTS{alertname="good"`) {
		t.Errorf("valid rule dropped alongside invalid ones:\n%s", out)
	}
}

// TestManifestValidatesAlerts: the manifest schema rejects malformed
// alert samples a buggy writer could produce.
func TestManifestValidatesAlerts(t *testing.T) {
	base := func() *Manifest {
		m := NewManifest("test", 1, 1)
		m.Kind = KindService
		m.Protocols = []string{"zigbee"}
		m.Timers = map[string]TimerStats{"a": {}, "b": {}, "c": {}}
		return m
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base manifest invalid: %v", err)
	}

	ok := base()
	ok.Alerts = []AlertSample{{Name: "lat", Severity: "page", State: "firing", FiredTotal: 2}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid alerts rejected: %v", err)
	}

	cases := []struct {
		why    string
		alerts []AlertSample
	}{
		{"invalid name", []AlertSample{{Name: "bad name", State: "firing"}}},
		{"empty name", []AlertSample{{Name: "", State: "firing"}}},
		{"unknown state", []AlertSample{{Name: "a", State: "exploded"}}},
		{"negative fired_total", []AlertSample{{Name: "a", State: "inactive", FiredTotal: -1}}},
		{"duplicate rule", []AlertSample{{Name: "a", State: "firing"}, {Name: "a", State: "firing"}}},
	}
	for _, tc := range cases {
		m := base()
		m.Alerts = tc.alerts
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.why, tc.alerts)
		}
	}
}
