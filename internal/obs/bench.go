package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchReportSchema identifies the benchmark-report layout; bump on
// breaking change. BENCH_*.json files at the repository root carry this
// schema and form the recorded perf trajectory across PRs.
const BenchReportSchema = "hideseek.bench-report/v1"

// BenchResult is one benchmark's aggregated numbers as `go test -bench
// -benchmem` reports them, plus any custom b.ReportMetric units under
// Extra (e.g. the stream scan stage's scan-p50-ns / scan-p95-ns).
type BenchResult struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// BenchReport is the machine-readable record of one benchmark run: build
// identity, the run parameters, and one BenchResult per benchmark. It is
// what cmd/benchreport writes (BENCH_sync.json) and validates, the
// benchmark analogue of the run manifest.
type BenchReport struct {
	Schema      string        `json:"schema"`
	CreatedAt   time.Time     `json:"created_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	Benchtime   string        `json:"benchtime"`
	BenchFilter string        `json:"bench_filter"`
	Packages    []string      `json:"packages"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// NewBenchReport stamps a report with schema and build identity; the
// caller appends the benchmark results.
func NewBenchReport(benchtime, filter string, packages []string) *BenchReport {
	return &BenchReport{
		Schema:      BenchReportSchema,
		CreatedAt:   time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchtime:   benchtime,
		BenchFilter: filter,
		Packages:    packages,
	}
}

// Validate is the schema check: it confirms a report a tool just read
// (or is about to write) carries everything trend consumers rely on.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchReportSchema {
		return fmt.Errorf("obs: bench report schema %q, want %q", r.Schema, BenchReportSchema)
	}
	if r.CreatedAt.IsZero() {
		return fmt.Errorf("obs: bench report has no creation time")
	}
	if r.Benchtime == "" {
		return fmt.Errorf("obs: bench report has no benchtime")
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("obs: bench report lists no benchmarks")
	}
	for _, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("obs: bench result with empty name")
		}
		if b.Package == "" {
			return fmt.Errorf("obs: benchmark %q has no package", b.Name)
		}
		if b.Iterations < 1 {
			return fmt.Errorf("obs: benchmark %q ran %d iterations", b.Name, b.Iterations)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("obs: benchmark %q reports %g ns/op", b.Name, b.NsPerOp)
		}
		if b.BytesPerOp < 0 || b.AllocsPerOp < 0 {
			return fmt.Errorf("obs: benchmark %q reports negative allocation stats", b.Name)
		}
	}
	return nil
}

// WriteFile marshals the report (indented, trailing newline) to path.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling bench report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: writing bench report: %w", err)
	}
	return nil
}

// ReadBenchReport loads and strictly decodes a report file: unknown
// fields are an error, so drift between writer and schema is caught in
// CI.
func ReadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading bench report: %w", err)
	}
	return DecodeBenchReport(data)
}

// DecodeBenchReport strictly decodes bench-report JSON.
func DecodeBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: decoding bench report: %w", err)
	}
	return &r, nil
}
