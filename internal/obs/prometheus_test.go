package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusRoundTrip is the exposition contract: whatever a
// populated registry renders must pass the in-repo Prometheus linter.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test.frames").Add(42)
	r.Counter("test.drops") // zero-valued counter still renders
	r.Timer("test.decode").Observe(3 * time.Millisecond)
	h := r.Histogram("test.scan_ns")
	for _, v := range []float64{100, 250, 1000, 1e6, 3.5e6} {
		h.Observe(v)
	}
	r.Histogram("test.empty") // never observed

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snap()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("rendered exposition fails lint: %v\n%s", err, out)
	}

	for _, want := range []string{
		"hideseek_test_frames_total 42",
		"# TYPE hideseek_test_decode_seconds summary",
		"hideseek_test_decode_seconds_count 1",
		"# TYPE hideseek_test_scan_ns histogram",
		`hideseek_test_scan_ns_bucket{le="+Inf"} 5`,
		"hideseek_test_scan_ns_count 5",
		`hideseek_test_empty_bucket{le="+Inf"} 0`,
		`window="60s"`,
		"hideseek_go_goroutines",
		"hideseek_go_gc_cycles_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// Fresh observations all land in the rolling window, so the p50 gauge
	// must be present for the short window.
	if !strings.Contains(out, `hideseek_test_scan_ns_p50{window="60s"}`) {
		t.Errorf("exposition lacks windowed p50 gauge:\n%s", out)
	}
}

func TestWritePrometheusStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(1)
	r.Counter("a").Add(2)
	r.Histogram("z").Observe(5)
	s := r.Snap()
	var one, two bytes.Buffer
	if err := WritePrometheus(&one, s); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&two, s); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("same snapshot rendered differently")
	}
	if strings.Index(one.String(), "hideseek_a_total") > strings.Index(one.String(), "hideseek_b_total") {
		t.Fatal("families not in sorted order")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"stream.scan_ns":  "hideseek_stream_scan_ns",
		"runner.trial-ns": "hideseek_runner_trial_ns",
		"x":               "hideseek_x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestLintRejectsMalformed drives the linter with the failure shapes the
// smoke test relies on it to catch.
func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad metric name": "1metric 5\n",
		"bad value":       "metric five\n",
		"negative counter": "# TYPE m_total counter\n" +
			"m_total -3\n",
		"duplicate series": "m 1\nm 2\n",
		"duplicate type": "# TYPE m counter\n" +
			"# TYPE m gauge\nm 1\n",
		"histogram without +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-monotone le": "# TYPE h histogram\n" +
			"h_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"decreasing cumulative counts": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 3\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 3\nh_count 3\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n",
		"summary without count": "# TYPE s summary\n" +
			"s_sum 3\n",
		"bucket without le": "# TYPE h histogram\n" +
			"h_bucket 1\nh_sum 1\nh_count 1\n",
	}
	for name, text := range cases {
		if err := LintPrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, text)
		}
	}
}

func TestLintAcceptsWellFormed(t *testing.T) {
	text := "# HELP m a counter\n# TYPE m_total counter\nm_total 3\n" +
		"# TYPE g gauge\ng{window=\"60s\"} 1.5\ng{window=\"120s\"} 2.5\n" +
		"# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 2.5\nh_count 2\n" +
		"# TYPE s summary\ns_sum 0.5\ns_count 4\n"
	if err := LintPrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("lint rejected well-formed exposition: %v", err)
	}
}
