package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSnapshotWhileObserving hammers readers (Snap +
// WritePrometheus) against writers (Inc/Observe/Since) on one registry.
// Its real teeth are CI's -race run: any unsynchronized access in the
// snapshot/exposition path shows up here.
func TestConcurrentSnapshotWhileObserving(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer.events")
			tm := r.Timer("hammer.step")
			h := r.Histogram("hammer.value_ns")
			for v := 1.0; ; v += 17 {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				tm.Observe(time.Microsecond)
				h.Observe(v)
				if v > 1e9 {
					v = 1
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snap()
				if err := WritePrometheus(io.Discard, s); err != nil {
					t.Error(err)
					return
				}
				if h, ok := s.Histograms["hammer.value_ns"]; ok && h.Count > 0 && h.Max < h.Min {
					t.Errorf("torn histogram summary: min %g > max %g", h.Min, h.Max)
					return
				}
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	s := r.Snap()
	if s.Counters["hammer.events"] != s.Timers["hammer.step"].Count {
		t.Fatalf("counter %d != timer count %d after quiesce",
			s.Counters["hammer.events"], s.Timers["hammer.step"].Count)
	}
	if int64(s.Counters["hammer.events"]) != s.Histograms["hammer.value_ns"].Count {
		t.Fatalf("counter %d != histogram count %d after quiesce",
			s.Counters["hammer.events"], s.Histograms["hammer.value_ns"].Count)
	}
}

// TestConcurrentTracerFinishClose races Finish/Recent against Close —
// the shutdown path that once could send on a closed sink channel.
func TestConcurrentTracerFinishClose(t *testing.T) {
	for i := 0; i < 20; i++ {
		tr := NewTracer(TracerConfig{Ring: 8, Sink: io.Discard})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for seq := uint64(0); seq < 50; seq++ {
					tr.Finish(mkTrace(tr, seq))
					tr.Recent(3)
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Close()
		}()
		wg.Wait()
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
