package obs

import (
	"math"
	"sync"
	"time"
)

// Histogram bucket geometry: log2-spaced octaves subdivided into 8
// sub-buckets each, covering [1, 2^40) — for durations in nanoseconds
// that is 1 ns up to ~18 minutes. Values below 1 land in bucket 0 and
// values at or above the top land in the last bucket; exact min/max/sum
// are tracked separately, so quantile estimates stay clamped to observed
// extremes. Relative quantile error is bounded by one sub-bucket width,
// 2^(1/8) ≈ 9%.
const (
	histShards       = 8
	bucketsPerOctave = 8
	histOctaves      = 40
	histBuckets      = histOctaves * bucketsPerOctave
)

// histShard is one independently locked slice of a histogram. Shards are
// padded to a cache line so neighboring shard mutexes do not false-share.
type histShard struct {
	mu     sync.Mutex
	n      uint64
	sum    float64
	min    float64
	max    float64
	counts [histBuckets]uint32
	_      [64]byte
}

// Histogram is a lock-sharded, fixed-memory log-bucketed value histogram
// for non-negative observations (latency nanoseconds, trial costs). The
// zero value is ready to use. Observe picks a shard from the value's bit
// pattern, so concurrent observers of distinct values almost never share
// a mutex; Summary merges the shards.
//
// Every observation also lands in a rolling ring of per-interval window
// shards (12 × 10 s), so a histogram answers both "since boot" (Summary)
// and "right now" (Window) without a second instrument or a second call
// site.
type Histogram struct {
	shards [histShards]histShard
	win    histWindow
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := int(math.Log2(v) * bucketsPerOctave)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLower returns the inclusive lower bound of bucket b.
func bucketLower(b int) float64 {
	return math.Exp2(float64(b) / bucketsPerOctave)
}

// Observe records one value. Negative and NaN values are clamped to 0.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v in one shard critical section —
// the bulk form the runtime profiler uses to replay a runtime/metrics
// bucket delta (count of events at one representative value) without n
// lock acquisitions. n == 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	// Shard by the value's bit pattern (Fibonacci hash of the mantissa
	// bits): no shared atomic, and near-identical values still spread.
	idx := (math.Float64bits(v) * 0x9E3779B97F4A7C15) >> 61
	s := &h.shards[idx&(histShards-1)]
	s.mu.Lock()
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n += n
	s.sum += v * float64(n)
	s.counts[bucketOf(v)] += clampUint32(n)
	s.mu.Unlock()
	h.win.observeN(v, n, time.Now())
}

// clampUint32 saturates a bulk count at the bucket counter's width.
func clampUint32(n uint64) uint32 {
	if n > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(n)
}

// BucketCount is one cumulative Prometheus-style bucket: Count
// observations with value ≤ UpperBound (math.Inf(1) on the final bucket).
type BucketCount struct {
	UpperBound float64
	Count      uint64
}

// HistogramStats is the JSON-ready summary of one histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets are the cumulative counts of the non-empty log buckets plus
	// the +Inf bucket, for Prometheus exposition. Deliberately excluded
	// from JSON so run manifests stay compact.
	Buckets []BucketCount `json:"-"`
}

// statsFromMerged turns merged bucket counts plus exact extremes into the
// summary: mean, interpolated quantiles, and cumulative buckets.
func statsFromMerged(merged []uint64, n uint64, min, max, sum float64) HistogramStats {
	st := HistogramStats{Count: int64(n), Min: min, Max: max, Sum: sum}
	if n == 0 {
		return HistogramStats{}
	}
	st.Mean = sum / float64(n)
	st.P50 = quantileFrom(merged, n, 0.50, min, max)
	st.P95 = quantileFrom(merged, n, 0.95, min, max)
	st.P99 = quantileFrom(merged, n, 0.99, min, max)
	var cum uint64
	for b, c := range merged {
		if c == 0 {
			continue
		}
		cum += c
		st.Buckets = append(st.Buckets, BucketCount{UpperBound: bucketLower(b + 1), Count: cum})
	}
	st.Buckets = append(st.Buckets, BucketCount{UpperBound: math.Inf(1), Count: n})
	return st
}

// Summary merges the shards and returns counts, extremes, and the
// p50/p95/p99 estimates. It locks each shard briefly, one at a time, so a
// concurrent Observe stream only delays it, never blocks on it.
func (h *Histogram) Summary() HistogramStats {
	var merged [histBuckets]uint64
	var n uint64
	var min, max, sum float64
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if s.n > 0 {
			if n == 0 || s.min < min {
				min = s.min
			}
			if n == 0 || s.max > max {
				max = s.max
			}
			n += s.n
			sum += s.sum
			for b, c := range s.counts {
				merged[b] += uint64(c)
			}
		}
		s.mu.Unlock()
	}
	return statsFromMerged(merged[:], n, min, max, sum)
}

// Window returns the summary of everything observed during the last d
// (clamped to the ring's two-minute reach, rounded to whole 10 s
// intervals). The ring trades exactness for fixed memory: a window covers
// between d-10s and d of history depending on interval phase.
func (h *Histogram) Window(d time.Duration) HistogramStats {
	return h.win.stats(time.Now(), d)
}

// Quantile estimates the q-quantile (q in [0,1]) of everything observed
// so far. 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	st := h.Summary()
	switch {
	case st.Count == 0:
		return 0
	case q <= 0:
		return st.Min
	case q >= 1:
		return st.Max
	case q == 0.5:
		return st.P50
	}
	var merged [histBuckets]uint64
	var n uint64
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		n += s.n
		for b, c := range s.counts {
			merged[b] += uint64(c)
		}
		s.mu.Unlock()
	}
	return quantileFrom(merged[:], n, q, st.Min, st.Max)
}

// quantileFrom walks the merged bucket counts to the q-quantile rank and
// interpolates linearly inside the landing bucket, clamped to the exact
// observed [min, max].
func quantileFrom(merged []uint64, n uint64, q, min, max float64) float64 {
	if n == 0 {
		return 0
	}
	rank := q * float64(n-1)
	var cum float64
	for b, c := range merged {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank < next {
			lo, hi := bucketLower(b), bucketLower(b+1)
			frac := (rank - cum + 0.5) / float64(c)
			v := lo + (hi-lo)*frac
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
		cum = next
	}
	return max
}
