package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"runtime"
	"testing"
	"time"
)

func mkTrace(tr *Tracer, seq uint64) *Trace {
	at := time.Now()
	t := tr.StartAt(at, 1, seq, int64(seq)*1000)
	t.AddSpanDur("scan", at, time.Microsecond, nil)
	t.AddSpanDur("decode", at.Add(time.Microsecond), 2*time.Microsecond, nil)
	return t
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 4})
	defer tr.Close()
	for seq := uint64(0); seq < 10; seq++ {
		tr.Finish(mkTrace(tr, seq))
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	// Oldest-first, and only the newest four survive.
	for i, want := range []uint64{6, 7, 8, 9} {
		if recent[i].Seq != want {
			t.Errorf("recent[%d].Seq = %d, want %d", i, recent[i].Seq, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Seq != 8 || got[1].Seq != 9 {
		t.Errorf("Recent(2) = %+v, want seqs 8,9", got)
	}
}

func TestTracerSpanOffsets(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 2})
	defer tr.Close()
	at := time.Now()
	trace := tr.StartAt(at, 7, 3, 500)
	trace.AddSpanDur("scan", at, 10*time.Microsecond, nil)
	trace.AddSpanDur("decode", at.Add(15*time.Microsecond), 5*time.Microsecond, errors.New("boom"))
	if trace.Spans[0].StartNS != 0 {
		t.Errorf("first span starts at %d ns, want 0", trace.Spans[0].StartNS)
	}
	if trace.Spans[1].StartNS != 15_000 {
		t.Errorf("second span starts at %d ns, want 15000", trace.Spans[1].StartNS)
	}
	if trace.Spans[1].Err != "boom" {
		t.Errorf("span error %q, want boom", trace.Spans[1].Err)
	}
	if trace.SID != 7 || trace.Seq != 3 || trace.Offset != 500 {
		t.Errorf("identity %+v not preserved", trace)
	}
}

func TestTracerSinkExportsNDJSON(t *testing.T) {
	var sink bytes.Buffer
	tr := NewTracer(TracerConfig{Ring: 8, Sink: &sink})
	for seq := uint64(0); seq < 5; seq++ {
		tr.Finish(mkTrace(tr, seq))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&sink)
	var lines int
	for sc.Scan() {
		var trace Trace
		if err := json.Unmarshal(sc.Bytes(), &trace); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if trace.Seq != uint64(lines) {
			t.Errorf("line %d carries seq %d", lines, trace.Seq)
		}
		lines++
	}
	if lines != 5 {
		t.Fatalf("sink holds %d lines, want 5", lines)
	}
}

// TestTracerCloseStopsExporter is the goroutine-leak guard: Close must
// tear the exporter down, be idempotent, and make later Finish calls
// harmless no-ops.
func TestTracerCloseStopsExporter(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		var sink bytes.Buffer
		tr := NewTracer(TracerConfig{Ring: 4, Sink: &sink})
		tr.Finish(mkTrace(tr, 0))
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		tr.Finish(mkTrace(tr, 1)) // after Close: dropped silently
		if got := len(tr.Recent(0)); got != 1 {
			t.Fatalf("post-close Finish landed in ring (%d traces)", got)
		}
	}
	// Let any leaked exporters park before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines grew %d → %d: exporter leak", before, after)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTracerCloseSurfacesSinkError(t *testing.T) {
	tr := NewTracer(TracerConfig{Ring: 2, Sink: failingWriter{}})
	// A bufio.Writer only hits the sink once its buffer fills or flushes,
	// so the error surfaces at Close.
	tr.Finish(mkTrace(tr, 0))
	if err := tr.Close(); err == nil {
		t.Fatal("sink write error lost")
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if trace := tr.StartAt(time.Now(), 0, 0, 0); trace != nil {
		t.Fatal("nil tracer allocated a trace")
	}
	tr.Finish(nil)
	if got := tr.Recent(5); got != nil {
		t.Fatalf("nil tracer returned traces %v", got)
	}
	if err := tr.WriteRecent(&bytes.Buffer{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.SinkDrops() != 0 {
		t.Fatal("nil tracer reports drops")
	}
	var trace *Trace
	trace.AddSpan("x", time.Now(), nil) // must not panic
	if trace.TraceID() != 0 {
		t.Fatal("nil trace has an ID")
	}
}
