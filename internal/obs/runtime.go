package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// RuntimeStats are the Go runtime gauges a scrape or liveness probe
// reports: scheduler load, heap pressure, and GC cost. Collected on
// demand (ReadMemStats is microseconds), never on the hot path.
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	LastGCPauseUS  float64 `json:"last_gc_pause_us"`
}

// ReadRuntime collects the current runtime gauges.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotalMS: float64(ms.PauseTotalNs) / float64(time.Millisecond),
	}
	if ms.NumGC > 0 {
		st.LastGCPauseUS = float64(ms.PauseNs[(ms.NumGC+255)%256]) / float64(time.Microsecond)
	}
	return st
}

// BuildStats identifies the running binary: Go version plus the VCS
// revision stamped by the toolchain, so a deployment is identifiable from
// its liveness probe alone.
type BuildStats struct {
	GoVersion   string `json:"go_version"`
	Path        string `json:"path,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildStats
)

// ReadBuild returns the binary's build identity (cached after first use).
// Binaries built outside a VCS checkout report only the Go version.
func ReadBuild() BuildStats {
	buildOnce.Do(func() {
		buildInfo = BuildStats{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Path = bi.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
