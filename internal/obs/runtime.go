package obs

import (
	"math"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeStats are the Go runtime gauges a scrape or liveness probe
// reports: scheduler load, heap pressure, and GC cost. Collected on
// demand (ReadMemStats is microseconds), never on the hot path.
//
// GC pauses are quantiles of the runtime/metrics /gc/pauses:seconds
// distribution (every pause since process start), not MemStats'
// 256-entry PauseNs ring: the ring silently wraps on long-lived daemons
// and a monotone pause total hides tail pauses behind the mean.
type RuntimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseP50US   float64 `json:"gc_pause_p50_us"`
	GCPauseP99US   float64 `json:"gc_pause_p99_us"`
}

const gcPausesMetric = "/gc/pauses:seconds"

// ReadRuntime collects the current runtime gauges.
func ReadRuntime() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
	}
	samples := []metrics.Sample{{Name: gcPausesMetric}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[0].Value.Float64Histogram()
		toUS := float64(time.Second) / float64(time.Microsecond)
		st.GCPauseP50US = float64HistQuantile(h, 0.50) * toUS
		st.GCPauseP99US = float64HistQuantile(h, 0.99) * toUS
	}
	return st
}

// float64HistQuantile estimates the q-quantile of a runtime/metrics
// histogram by walking its cumulative counts and interpolating inside
// the landing bucket. Unbounded edge buckets (±Inf boundaries) fall
// back to their finite neighbor. Returns 0 for an empty histogram.
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			switch {
			case math.IsInf(lo, -1):
				return hi
			case math.IsInf(hi, 1):
				return lo
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	// Unreached unless rounding pushed rank past the last bucket.
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// BuildStats identifies the running binary: Go version plus the VCS
// revision stamped by the toolchain, so a deployment is identifiable from
// its liveness probe alone.
type BuildStats struct {
	GoVersion   string `json:"go_version"`
	Path        string `json:"path,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildStats
)

// ReadBuild returns the binary's build identity (cached after first use).
// Binaries built outside a VCS checkout report only the Go version.
func ReadBuild() BuildStats {
	buildOnce.Do(func() {
		buildInfo = BuildStats{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Path = bi.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.VCSModified = s.Value == "true"
			}
		}
	})
	return buildInfo
}
