package obs

import (
	"container/heap"
	"sort"
	"sync"
)

// TopK is a space-saving heavy-hitter sketch (Metwally, Agrawal, El
// Abbadi 2005): fixed capacity of monitored keys, and when a new key
// arrives at a full sketch it evicts the minimum-count entry,
// inheriting its count as the new key's error bound. For any reported
// entry the true weight w satisfies Count-Err <= w <= Count, and any
// key whose true weight exceeds total/capacity is guaranteed to be
// monitored — exactly the property needed to name heavy-hitter session
// keys without per-key memory.
//
// Weights are float64 so the same sketch attributes both event counts
// (w=1 per frame) and magnitudes (w=latency nanoseconds). A single
// mutex guards the sketch: each fleet shard owns its own sketches, so
// contention is bounded by per-shard concurrency, like shardObs.
type TopK struct {
	mu  sync.Mutex
	cap int
	m   map[string]*topkEntry
	h   topkHeap
}

type topkEntry struct {
	key   string
	count float64
	err   float64
	idx   int // heap index
}

// TopKEntry is one reported heavy hitter. Count overestimates the true
// weight by at most Err.
type TopKEntry struct {
	Key   string  `json:"key"`
	Count float64 `json:"count"`
	Err   float64 `json:"err,omitempty"`
}

// NewTopK returns a sketch monitoring at most capacity keys (minimum 1).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	return &TopK{
		cap: capacity,
		m:   make(map[string]*topkEntry, capacity),
	}
}

// Add credits key with weight w. Non-positive weights are ignored.
func (t *TopK) Add(key string, w float64) {
	if t == nil || w <= 0 {
		return
	}
	t.mu.Lock()
	if e, ok := t.m[key]; ok {
		e.count += w
		heap.Fix(&t.h, e.idx)
		t.mu.Unlock()
		return
	}
	if len(t.m) < t.cap {
		e := &topkEntry{key: key, count: w}
		t.m[key] = e
		heap.Push(&t.h, e)
		t.mu.Unlock()
		return
	}
	// Full: the new key replaces the minimum, inheriting its count as
	// the error bound.
	min := t.h[0]
	delete(t.m, min.key)
	e := &topkEntry{key: key, count: min.count + w, err: min.count}
	t.m[key] = e
	t.h[0] = e
	e.idx = 0
	heap.Fix(&t.h, 0)
	t.mu.Unlock()
}

// Top returns up to k entries in decreasing Count order. k <= 0 returns
// every monitored key.
func (t *TopK) Top(k int) []TopKEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TopKEntry, 0, len(t.h))
	for _, e := range t.h {
		out = append(out, TopKEntry{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Merge folds the entries of a Top() report into t (used to combine
// per-shard sketches into a fleet-wide view). Error bounds add: the
// merged overestimate is at most the sum of the parts'.
func (t *TopK) Merge(entries []TopKEntry) {
	for _, e := range entries {
		t.mu.Lock()
		if cur, ok := t.m[e.Key]; ok {
			cur.count += e.Count
			cur.err += e.Err
			heap.Fix(&t.h, cur.idx)
			t.mu.Unlock()
			continue
		}
		if len(t.m) < t.cap {
			ne := &topkEntry{key: e.Key, count: e.Count, err: e.Err}
			t.m[e.Key] = ne
			heap.Push(&t.h, ne)
			t.mu.Unlock()
			continue
		}
		min := t.h[0]
		delete(t.m, min.key)
		ne := &topkEntry{key: e.Key, count: min.count + e.Count, err: min.count + e.Err}
		t.m[e.Key] = ne
		t.h[0] = ne
		ne.idx = 0
		heap.Fix(&t.h, 0)
		t.mu.Unlock()
	}
}

// topkHeap is a min-heap on count, so the eviction victim is O(1) away.
type topkHeap []*topkEntry

func (h topkHeap) Len() int           { return len(h) }
func (h topkHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h topkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *topkHeap) Push(x any)        { e := x.(*topkEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *topkHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
