package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimerBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x.events") != c {
		t.Fatal("second lookup returned a different counter")
	}

	tm := r.Timer("x.stage")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(4 * time.Millisecond)
	if tm.Count() != 2 {
		t.Fatalf("timer count = %d, want 2", tm.Count())
	}
	if tm.Total() != 6*time.Millisecond {
		t.Fatalf("timer total = %v, want 6ms", tm.Total())
	}
	if tm.Mean() != 3*time.Millisecond {
		t.Fatalf("timer mean = %v, want 3ms", tm.Mean())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := 1; v <= 10000; v++ {
		h.Observe(float64(v))
	}
	st := h.Summary()
	if st.Count != 10000 {
		t.Fatalf("count = %d, want 10000", st.Count)
	}
	if st.Min != 1 || st.Max != 10000 {
		t.Fatalf("min/max = %g/%g, want 1/10000", st.Min, st.Max)
	}
	if math.Abs(st.Mean-5000.5) > 1e-6 {
		t.Fatalf("mean = %g, want 5000.5", st.Mean)
	}
	// Log-bucketed estimates: one sub-bucket is 2^(1/8) ≈ +9%, so allow 10%.
	for _, q := range []struct {
		got, want float64
	}{{st.P50, 5000}, {st.P95, 9500}, {st.P99, 9900}} {
		if rel := math.Abs(q.got-q.want) / q.want; rel > 0.10 {
			t.Errorf("quantile estimate %g for true %g (rel err %.1f%%)", q.got, q.want, 100*rel)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want exact min 1", got)
	}
	if got := h.Quantile(1); got != 10000 {
		t.Errorf("Quantile(1) = %g, want exact max 10000", got)
	}
}

func TestHistogramEmptyAndClamped(t *testing.T) {
	var h Histogram
	if st := h.Summary(); st.Count != 0 || st.P99 != 0 {
		t.Fatalf("empty summary = %+v", st)
	}
	h.Observe(-5)
	h.Observe(math.NaN())
	st := h.Summary()
	if st.Count != 2 || st.Min != 0 || st.Max != 0 {
		t.Fatalf("clamped summary = %+v, want two zero observations", st)
	}
}

// TestInstrumentsRaceSafe hammers one counter, one timer, and one
// histogram from many goroutines; run with -race this is the package's
// concurrency guarantee.
func TestInstrumentsRaceSafe(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			// Concurrent get-or-create on the same names plus hot updates.
			c := r.Counter("race.events")
			tm := r.Timer("race.stage")
			h := r.Histogram("race.latency")
			for i := 0; i < perG; i++ {
				c.Inc()
				tm.Observe(time.Duration(i%97) * time.Microsecond)
				h.Observe(float64(g*perG + i))
				if i%500 == 0 {
					_ = r.Snap() // snapshot under fire must not race
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snap()
	if got := snap.Counters["race.events"]; got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Timers["race.stage"].Count; got != goroutines*perG {
		t.Fatalf("timer count = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Histograms["race.latency"].Count; got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Reset()
	snap := r.Snap()
	if len(snap.Counters) != 0 {
		t.Fatalf("counters after reset: %v", snap.Counters)
	}
	if got := r.Counter("a").Value(); got != 0 {
		t.Fatalf("re-created counter = %d, want 0", got)
	}
}
