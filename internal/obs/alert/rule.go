// Package alert is the declarative SLO layer over obs: rules written as
// one-line objectives ("p99(stream.verdict_ns) < 250ms over 60s") are
// compiled into multi-window burn-rate checks against the registry's
// rolling histograms and counters, and a background engine drives each
// rule through an inactive→pending→firing→resolved state machine with
// hold-down hysteresis (the same escalate-fast / recover-slow shape as
// the stream admission tiers).
//
// Rule grammar, one rule per line ('#' comments and blank lines are
// ignored in rules files):
//
//	<name>: <expr> <op> <bound> over <dur> [for <dur>] [resolve <dur>] [margin <frac>] [severity <word>]
//
//	<expr>  := p50(<hist>) | p95(<hist>) | p99(<hist>)
//	         | rate(<counter>) | increase(<counter>)
//	         | rate(<counter>) / rate(<counter>)
//	<op>    := < | <= | > | >= | ==       (states the HEALTHY objective)
//	<bound> := float (1e-3) or Go duration (250ms → nanoseconds)
//
// The objective is what health looks like; a breach is its negation.
// `over` sets the fast evaluation window; the engine derives a slow
// window (2× fast, capped at the ring's 2-minute reach) and only
// breaches when BOTH windows violate the objective — the multi-window
// burn-rate trick that keeps a 10 s blip from paging while a sustained
// burn still fires within one fast window. `for` is the pending
// hold-down before firing, `resolve` the continuous-healthy hold before
// a firing rule resolves, and `margin` the recovery hysteresis (default
// 10%: a `<` rule must sit below 0.9×bound to count as healthy while
// resolving, so a value oscillating at the bound cannot flap).
package alert

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Op is a comparison stating the healthy objective.
type Op string

const (
	OpLT Op = "<"
	OpLE Op = "<="
	OpGT Op = ">"
	OpGE Op = ">="
	OpEQ Op = "=="
)

// ExprKind discriminates the compiled expression forms.
type ExprKind int

const (
	// KindQuantile reads a quantile of a windowed histogram.
	KindQuantile ExprKind = iota
	// KindRate reads a counter's per-second rate over the window.
	KindRate
	// KindRatio divides two counter rates over the window.
	KindRatio
	// KindIncrease reads a counter's absolute increase over the window.
	KindIncrease
)

// Expr is a compiled rule expression.
type Expr struct {
	Kind     ExprKind
	Quantile float64 // KindQuantile: 0.50, 0.95, or 0.99
	Hist     string  // KindQuantile: histogram instrument name
	Counter  string  // KindRate/KindIncrease: counter name; KindRatio: numerator
	Denom    string  // KindRatio: denominator counter name
	src      string  // canonical text, for display
}

// String returns the canonical expression text.
func (e Expr) String() string { return e.src }

// Rule is one parsed SLO objective.
type Rule struct {
	Name     string
	Severity string
	Expr     Expr
	Op       Op
	Bound    float64
	// Window is the fast evaluation window (`over`). The engine derives
	// the slow window as 2× Window capped at the histogram ring reach.
	Window time.Duration
	// For is how long a breach must persist before pending escalates to
	// firing (0: fire on the step the breach is confirmed).
	For time.Duration
	// ResolveHold is how long both windows must stay margin-healthy,
	// continuously, before a firing rule resolves.
	ResolveHold time.Duration
	// Margin is the recovery hysteresis fraction in [0, 1).
	Margin float64
}

// Rule-field defaults applied by the parser.
const (
	DefaultSeverity    = "page"
	DefaultResolveHold = 30 * time.Second
	DefaultMargin      = 0.1
)

// validRuleName constrains names to label-value-safe characters (also
// enforced by obs's exposition backstop).
func validRuleName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_', r == '.', r == ':', r == '-':
		default:
			return false
		}
	}
	return true
}

// validInstrument accepts dotted obs instrument names.
func validInstrument(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

// ParseRule parses one rule line.
func ParseRule(line string) (Rule, error) {
	r := Rule{Severity: DefaultSeverity, ResolveHold: DefaultResolveHold, Margin: DefaultMargin}
	colon := strings.Index(line, ":")
	if colon < 0 {
		return r, fmt.Errorf("alert: rule %q: missing name (want \"<name>: <expr> ...\")", line)
	}
	r.Name = strings.TrimSpace(line[:colon])
	if !validRuleName(r.Name) {
		return r, fmt.Errorf("alert: invalid rule name %q", r.Name)
	}
	fields := strings.Fields(line[colon+1:])

	// Locate the comparison operator; everything before it is the
	// expression (joined without spaces, so "rate(a) / rate(b)" works).
	opIdx := -1
	for i, f := range fields {
		switch Op(f) {
		case OpLT, OpLE, OpGT, OpGE, OpEQ:
			opIdx = i
		}
		if opIdx >= 0 {
			break
		}
	}
	if opIdx < 1 || opIdx+1 >= len(fields) {
		return r, fmt.Errorf("alert: rule %q: want \"<expr> <op> <bound>\"", r.Name)
	}
	r.Op = Op(fields[opIdx])
	var err error
	if r.Expr, err = parseExpr(strings.Join(fields[:opIdx], "")); err != nil {
		return r, fmt.Errorf("alert: rule %q: %w", r.Name, err)
	}
	if r.Bound, err = parseBound(fields[opIdx+1]); err != nil {
		return r, fmt.Errorf("alert: rule %q: %w", r.Name, err)
	}

	// Trailing keyword/value pairs.
	rest := fields[opIdx+2:]
	if len(rest)%2 != 0 {
		return r, fmt.Errorf("alert: rule %q: dangling keyword %q", r.Name, rest[len(rest)-1])
	}
	sawOver := false
	for i := 0; i < len(rest); i += 2 {
		key, val := rest[i], rest[i+1]
		switch key {
		case "over":
			if r.Window, err = time.ParseDuration(val); err != nil || r.Window <= 0 {
				return r, fmt.Errorf("alert: rule %q: bad window %q", r.Name, val)
			}
			sawOver = true
		case "for":
			if r.For, err = time.ParseDuration(val); err != nil || r.For < 0 {
				return r, fmt.Errorf("alert: rule %q: bad for duration %q", r.Name, val)
			}
		case "resolve":
			if r.ResolveHold, err = time.ParseDuration(val); err != nil || r.ResolveHold < 0 {
				return r, fmt.Errorf("alert: rule %q: bad resolve duration %q", r.Name, val)
			}
		case "margin":
			if r.Margin, err = strconv.ParseFloat(val, 64); err != nil || r.Margin < 0 || r.Margin >= 1 {
				return r, fmt.Errorf("alert: rule %q: bad margin %q (want [0,1))", r.Name, val)
			}
		case "severity":
			if !validRuleName(val) {
				return r, fmt.Errorf("alert: rule %q: bad severity %q", r.Name, val)
			}
			r.Severity = val
		default:
			return r, fmt.Errorf("alert: rule %q: unknown keyword %q", r.Name, key)
		}
	}
	if !sawOver {
		return r, fmt.Errorf("alert: rule %q: missing \"over <dur>\"", r.Name)
	}
	return r, nil
}

// parseExpr compiles the space-stripped expression text.
func parseExpr(s string) (Expr, error) {
	if num, den, ok := strings.Cut(s, "/"); ok {
		n, err := parseCall(num)
		if err != nil {
			return Expr{}, err
		}
		d, err := parseCall(den)
		if err != nil {
			return Expr{}, err
		}
		if n.Kind != KindRate || d.Kind != KindRate {
			return Expr{}, fmt.Errorf("ratio operands must both be rate(...), got %q", s)
		}
		return Expr{Kind: KindRatio, Counter: n.Counter, Denom: d.Counter,
			src: n.src + " / " + d.src}, nil
	}
	return parseCall(s)
}

// parseCall compiles a single fn(arg) term.
func parseCall(s string) (Expr, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Expr{}, fmt.Errorf("malformed expression %q (want fn(instrument))", s)
	}
	fn, arg := s[:open], s[open+1:len(s)-1]
	if !validInstrument(arg) {
		return Expr{}, fmt.Errorf("invalid instrument name %q", arg)
	}
	src := fn + "(" + arg + ")"
	switch fn {
	case "p50":
		return Expr{Kind: KindQuantile, Quantile: 0.50, Hist: arg, src: src}, nil
	case "p95":
		return Expr{Kind: KindQuantile, Quantile: 0.95, Hist: arg, src: src}, nil
	case "p99":
		return Expr{Kind: KindQuantile, Quantile: 0.99, Hist: arg, src: src}, nil
	case "rate":
		return Expr{Kind: KindRate, Counter: arg, src: src}, nil
	case "increase":
		return Expr{Kind: KindIncrease, Counter: arg, src: src}, nil
	}
	return Expr{}, fmt.Errorf("unknown function %q (want p50/p95/p99/rate/increase)", fn)
}

// parseBound accepts a float ("1e-3", "0") or a Go duration ("250ms"),
// durations converting to nanoseconds to match the *_ns histogram
// convention.
func parseBound(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("negative bound %q", s)
		}
		return float64(d.Nanoseconds()), nil
	}
	return 0, fmt.Errorf("bad bound %q (want float or duration)", s)
}

// ParseRules parses a rules file body: one rule per line, '#' comments
// and blank lines ignored. Duplicate rule names are rejected.
func ParseRules(src string) ([]Rule, error) {
	var rules []Rule
	seen := map[string]int{}
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if first, dup := seen[r.Name]; dup {
			return nil, fmt.Errorf("line %d: duplicate rule %q (first on line %d)", i+1, r.Name, first)
		}
		seen[r.Name] = i + 1
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("alert: no rules found")
	}
	return rules, nil
}

// DefaultRules are the built-in objectives hideseekd applies when no
// rules file is given: verdict latency, drop ratio, shed burn rate,
// calibration drift, and GC pause tail.
func DefaultRules() []Rule {
	rules, err := ParseRules(defaultRulesSrc)
	if err != nil {
		panic("alert: default rules: " + err.Error()) // compile-time-style invariant
	}
	return rules
}

const defaultRulesSrc = `
# hideseekd built-in SLOs. Bounds follow the instrument's unit
# (histograms are nanoseconds; rates are per second over the window).
verdict_latency: p99(stream.verdict_ns) < 250ms over 60s for 10s severity page
drop_ratio: rate(stream.dropped_frames) / rate(stream.frames) < 1e-3 over 60s for 10s severity page
shed_burn: rate(stream.shed_sessions) < 1 over 60s for 10s severity ticket
calib_drift: increase(stream.calib_drift) == 0 over 60s severity ticket
gc_pause: p99(go.gc_pause_ns) < 10ms over 60s for 30s severity ticket
`
