package alert

import (
	"testing"
	"time"

	"hideseek/internal/obs"
)

// fakeEval drives the state machine deterministically: the test sets
// value/has per window between steps.
type fakeEval struct {
	fast, slow float64
	fastHas    bool
	slowHas    bool
}

func (f *fakeEval) eval(_ *Expr, window time.Duration, _ time.Time) (float64, bool) {
	if window > time.Minute { // the derived slow window in these tests
		return f.slow, f.slowHas
	}
	return f.fast, f.fastHas
}

// testEngine builds an engine around one rule with a fake clock and
// evaluator; step(now) is driven manually, never via Start.
func testEngine(t *testing.T, line string) (*Engine, *fakeEval, *compiledRule) {
	t.Helper()
	rule, err := ParseRule(line)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Registry: obs.NewRegistry(), Rules: []Rule{rule}})
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeEval{}
	e.evalFn = f.eval
	return e, f, e.rules[0]
}

// TestLifecycle walks one rule through the full
// inactive→pending→firing→resolved arc.
func TestLifecycle(t *testing.T) {
	// Fast window 1m → slow window 2m; bound 100; margin 0.1 means
	// healthy-for-recovery demands < 90.
	e, f, cr := testEngine(t, "lat: p99(h) < 100 over 1m for 3s resolve 5s")
	now := time.Unix(1000, 0)
	tick := func(d time.Duration) { now = now.Add(d); e.step(now) }

	f.fast, f.fastHas, f.slow, f.slowHas = 50, true, 50, true
	tick(time.Second)
	if cr.state != StateInactive {
		t.Fatalf("healthy start: state %v", cr.state)
	}

	// Breach both windows: pending, holding For before firing.
	f.fast, f.slow = 150, 150
	tick(time.Second)
	if cr.state != StatePending {
		t.Fatalf("after breach: state %v, want pending", cr.state)
	}
	tick(time.Second) // 1s into hold
	if cr.state != StatePending {
		t.Fatalf("mid-hold: state %v, want pending", cr.state)
	}
	tick(2 * time.Second) // 3s into hold: fire
	if cr.state != StateFiring || cr.firedTotal != 1 {
		t.Fatalf("after hold: state %v fired %d, want firing/1", cr.state, cr.firedTotal)
	}

	// Margin-healthy (below 90) continuously for the resolve hold.
	f.fast, f.slow = 80, 80
	tick(time.Second)
	if cr.state != StateFiring {
		t.Fatalf("recovery start: state %v, want still firing", cr.state)
	}
	tick(5 * time.Second)
	if cr.state != StateResolved {
		t.Fatalf("after resolve hold: state %v, want resolved", cr.state)
	}

	// Resolved re-arms: a fresh breach goes back through pending.
	f.fast, f.slow = 150, 150
	tick(time.Second)
	if cr.state != StatePending {
		t.Fatalf("re-breach after resolve: state %v, want pending", cr.state)
	}

	// History recorded every transition in order.
	var arc []string
	for _, tr := range e.History() {
		arc = append(arc, tr.To)
	}
	want := []string{"pending", "firing", "resolved", "pending"}
	if len(arc) != len(want) {
		t.Fatalf("history %v, want %v", arc, want)
	}
	for i := range want {
		if arc[i] != want[i] {
			t.Fatalf("history %v, want %v", arc, want)
		}
	}
}

// TestFlapSuppression: a breach that clears during the pending hold
// returns to inactive without ever firing.
func TestFlapSuppression(t *testing.T) {
	e, f, cr := testEngine(t, "lat: p99(h) < 100 over 1m for 10s")
	now := time.Unix(1000, 0)
	tick := func(d time.Duration) { now = now.Add(d); e.step(now) }

	f.fast, f.fastHas, f.slow, f.slowHas = 150, true, 150, true
	tick(time.Second)
	if cr.state != StatePending {
		t.Fatalf("state %v, want pending", cr.state)
	}
	f.fast, f.slow = 50, 50
	tick(time.Second)
	if cr.state != StateInactive || cr.firedTotal != 0 {
		t.Fatalf("blip survived: state %v fired %d", cr.state, cr.firedTotal)
	}
}

// TestForZeroFiresImmediately: with no hold, a confirmed breach fires
// on the same step, recording both transitions.
func TestForZeroFiresImmediately(t *testing.T) {
	e, f, cr := testEngine(t, "drift: increase(c) == 0 over 1m")
	f.fast, f.fastHas, f.slow, f.slowHas = 3, true, 3, true
	e.step(time.Unix(1000, 1))
	if cr.state != StateFiring || cr.firedTotal != 1 {
		t.Fatalf("state %v fired %d, want firing/1", cr.state, cr.firedTotal)
	}
	if h := e.History(); len(h) != 2 || h[0].To != "pending" || h[1].To != "firing" {
		t.Fatalf("history %+v", h)
	}
}

// TestDualWindowBurnRate: a fast-window spike without slow-window
// confirmation must not leave inactive — and vice versa.
func TestDualWindowBurnRate(t *testing.T) {
	e, f, cr := testEngine(t, "lat: p99(h) < 100 over 1m")
	now := time.Unix(1000, 0)

	f.fast, f.fastHas, f.slow, f.slowHas = 500, true, 50, true // spike, slow still healthy
	e.step(now)
	if cr.state != StateInactive {
		t.Fatalf("fast-only spike: state %v, want inactive", cr.state)
	}
	f.fast, f.slow = 50, 500 // stale slow breach, fast recovered
	e.step(now.Add(time.Second))
	if cr.state != StateInactive {
		t.Fatalf("slow-only breach: state %v, want inactive", cr.state)
	}
	f.fast, f.slow = 500, 500 // both: breach
	e.step(now.Add(2 * time.Second))
	if cr.state != StateFiring {
		t.Fatalf("dual breach: state %v, want firing", cr.state)
	}
}

// TestNoDataIsHealthy: an empty window can neither breach nor block
// recovery.
func TestNoDataIsHealthy(t *testing.T) {
	e, f, cr := testEngine(t, "lat: p99(h) < 100 over 1m resolve 2s")
	now := time.Unix(1000, 0)
	tick := func(d time.Duration) { now = now.Add(d); e.step(now) }

	f.fast, f.fastHas, f.slow, f.slowHas = 999, false, 999, false
	tick(time.Second)
	if cr.state != StateInactive {
		t.Fatalf("no data: state %v, want inactive", cr.state)
	}

	// Fire, then drain the windows: emptiness counts as calm.
	f.fastHas, f.slowHas = true, true
	f.fast, f.slow = 500, 500
	tick(time.Second)
	if cr.state != StateFiring {
		t.Fatalf("state %v, want firing", cr.state)
	}
	f.fastHas, f.slowHas = false, false
	tick(time.Second)
	tick(2 * time.Second)
	if cr.state != StateResolved {
		t.Fatalf("drained windows: state %v, want resolved", cr.state)
	}
}

// TestResolveHysteresis: while firing, sitting just inside the bound
// (healthy but without margin headroom) never resolves, and any
// non-calm step restarts the recovery clock.
func TestResolveHysteresis(t *testing.T) {
	e, f, cr := testEngine(t, "lat: p99(h) < 100 over 1m resolve 5s margin 0.1")
	now := time.Unix(1000, 0)
	tick := func(d time.Duration) { now = now.Add(d); e.step(now) }

	f.fast, f.fastHas, f.slow, f.slowHas = 500, true, 500, true
	tick(time.Second)
	if cr.state != StateFiring {
		t.Fatalf("state %v, want firing", cr.state)
	}

	// 95 is < 100 (inside the bound) but not < 90 (margin-healthy):
	// oscillating at the bound must not resolve.
	f.fast, f.slow = 95, 95
	tick(time.Second)
	tick(10 * time.Second)
	if cr.state != StateFiring {
		t.Fatalf("at-bound value resolved the rule: state %v", cr.state)
	}

	// Margin-healthy for 4s, one wobble, then 4s more: the wobble must
	// restart the hold, so still firing; only a full 5s streak resolves.
	f.fast, f.slow = 80, 80
	tick(time.Second)
	tick(3 * time.Second) // 3s continuous calm (clock started at first calm step)
	f.fast = 95           // wobble
	tick(time.Second)
	f.fast = 80
	tick(time.Second) // calm clock restarts here
	tick(4 * time.Second)
	if cr.state != StateFiring {
		t.Fatalf("wobble did not restart recovery clock: state %v", cr.state)
	}
	tick(time.Second) // 5s continuous
	if cr.state != StateResolved {
		t.Fatalf("state %v, want resolved after full hold", cr.state)
	}
}

// TestCounterRateAndIncrease exercises the production evaluator's
// counter rings end to end with a fake clock.
func TestCounterRateAndIncrease(t *testing.T) {
	reg := obs.NewRegistry()
	rules, err := ParseRules(`
shed: rate(test.shed) < 1 over 10s
drift: increase(test.drift) == 0 over 10s
ratio: rate(test.drop) / rate(test.total) < 0.5 over 10s
`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Registry: reg, Rules: rules, Every: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*compiledRule{}
	for _, cr := range e.rules {
		byName[cr.Name] = cr
	}
	now := time.Unix(2000, 0)
	tick := func() { now = now.Add(time.Second); e.step(now) }

	// No traffic at all: the ratio rule has zero denominator and must be
	// vacuously healthy, not firing on 0/0.
	tick()
	tick()
	if st := byName["ratio"].state; st != StateInactive {
		t.Fatalf("zero-traffic ratio state %v", st)
	}

	// 2 sheds/s sustained for > the slow window (20s): shed fires.
	for i := 0; i < 25; i++ {
		reg.Counter("test.shed").Add(2)
		reg.Counter("test.total").Add(10)
		reg.Counter("test.drop").Add(1) // ratio 0.1: healthy
		tick()
	}
	if st := byName["shed"].state; st != StateFiring {
		t.Fatalf("shed state %v, want firing (rate ≈ 2/s > 1/s)", st)
	}
	if v := byName["shed"].lastValue; v < 1.5 || v > 2.5 {
		t.Errorf("shed rate = %g, want ≈ 2", v)
	}
	if st := byName["ratio"].state; st != StateInactive {
		t.Fatalf("ratio state %v, want inactive (0.1 < 0.5)", st)
	}
	if st := byName["drift"].state; st != StateInactive {
		t.Fatalf("drift state %v, want inactive (no drift events)", st)
	}

	// One drift event breaches == 0 on the next evaluation.
	reg.Counter("test.drift").Inc()
	tick()
	if st := byName["drift"].state; st != StateFiring {
		t.Fatalf("drift state %v, want firing after increase", st)
	}
}

// TestSamplesAndBudget pins the manifest/exposition view.
func TestSamplesAndBudget(t *testing.T) {
	e, f, _ := testEngine(t, "lat: p99(h) < 100 over 1m")
	f.fast, f.fastHas, f.slow, f.slowHas = 25, true, 25, true
	e.step(time.Unix(1000, 0))
	s := e.Samples()
	if len(s) != 1 || s[0].Name != "lat" || s[0].State != "inactive" {
		t.Fatalf("samples %+v", s)
	}
	if s[0].Value != 25 || s[0].Bound != 100 {
		t.Errorf("value/bound = %g/%g", s[0].Value, s[0].Bound)
	}
	// 25 of a 100 budget spent: 75% remaining.
	if s[0].BudgetRemaining != 0.75 {
		t.Errorf("budget = %g, want 0.75", s[0].BudgetRemaining)
	}
	if s[0].SinceUnixMS != 0 {
		t.Errorf("never-transitioned rule reports since = %d", s[0].SinceUnixMS)
	}

	f.fast, f.slow = 250, 250 // past the bound: budget exhausted
	e.step(time.Unix(1001, 0))
	s = e.Samples()
	if s[0].BudgetRemaining != 0 {
		t.Errorf("over-bound budget = %g, want 0", s[0].BudgetRemaining)
	}
	if s[0].State != "firing" || s[0].FiredTotal != 1 {
		t.Errorf("state/fired = %s/%d", s[0].State, s[0].FiredTotal)
	}
	if s[0].SinceUnixMS == 0 {
		t.Error("firing rule reports no since timestamp")
	}
}

// TestStatusView checks the /v1/alerts payload carries the compiled
// objective alongside the sample.
func TestStatusView(t *testing.T) {
	e, _, _ := testEngine(t, "lat: p99(stream.verdict_ns) < 250ms over 1m")
	st := e.Status()
	if len(st.Rules) != 1 {
		t.Fatalf("rules %+v", st.Rules)
	}
	r := st.Rules[0]
	if r.Expr != "p99(stream.verdict_ns)" || r.Op != "<" || r.Window != "1m0s" || r.Slow != "2m0s" {
		t.Errorf("status rule %+v", r)
	}
}

// TestEngineStartStop: the background evaluator starts, steps, and
// stops cleanly; Stop is idempotent and nil-safe.
func TestEngineStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	rules, err := ParseRules("r: rate(test.c) < 1000 over 10s")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Registry: reg, Rules: rules, Every: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Start() // double-start is a no-op
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.mu.Lock()
		n := e.rings["test.c"].n
		e.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evaluator never sampled the counter ring")
		}
		time.Sleep(time.Millisecond)
	}
	e.Stop()
	e.Stop()
	var nilEngine *Engine
	nilEngine.Stop()
}

// TestDuplicateRuleRejected: New refuses two rules with one name.
func TestDuplicateRuleRejected(t *testing.T) {
	r, err := ParseRule("a: p99(h) < 1 over 1s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Registry: obs.NewRegistry(), Rules: []Rule{r, r}}); err == nil {
		t.Fatal("duplicate rule accepted")
	}
}

// TestHistoryRingTrims: the transition log is bounded.
func TestHistoryRingTrims(t *testing.T) {
	e, f, _ := testEngine(t, "lat: p99(h) < 100 over 1m resolve 1s margin 0")
	now := time.Unix(1000, 0)
	f.fastHas, f.slowHas = true, true
	e.histCap = 8
	for i := 0; i < 20; i++ { // each loop: fire + resolve = 3 transitions
		f.fast, f.slow = 500, 500
		now = now.Add(time.Second)
		e.step(now)
		f.fast, f.slow = 10, 10
		now = now.Add(2 * time.Second)
		e.step(now)
		now = now.Add(2 * time.Second)
		e.step(now)
	}
	if h := e.History(); len(h) > 8 {
		t.Fatalf("history grew to %d, cap 8", len(h))
	}
}
