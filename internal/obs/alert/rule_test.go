package alert

import (
	"strings"
	"testing"
	"time"
)

// TestParseRuleFull exercises every keyword on one line.
func TestParseRuleFull(t *testing.T) {
	r, err := ParseRule("lat: p99(stream.verdict_ns) < 250ms over 60s for 10s resolve 20s margin 0.2 severity ticket")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "lat" || r.Severity != "ticket" {
		t.Errorf("name/severity = %q/%q", r.Name, r.Severity)
	}
	if r.Expr.Kind != KindQuantile || r.Expr.Quantile != 0.99 || r.Expr.Hist != "stream.verdict_ns" {
		t.Errorf("expr = %+v", r.Expr)
	}
	if r.Op != OpLT {
		t.Errorf("op = %q", r.Op)
	}
	// Duration bounds convert to nanoseconds (the *_ns convention).
	if want := float64(250 * time.Millisecond); r.Bound != want {
		t.Errorf("bound = %g, want %g", r.Bound, want)
	}
	if r.Window != 60*time.Second || r.For != 10*time.Second || r.ResolveHold != 20*time.Second {
		t.Errorf("windows = %v/%v/%v", r.Window, r.For, r.ResolveHold)
	}
	if r.Margin != 0.2 {
		t.Errorf("margin = %g", r.Margin)
	}
	if got := r.Expr.String(); got != "p99(stream.verdict_ns)" {
		t.Errorf("expr string = %q", got)
	}
}

// TestParseRuleDefaults checks the fields a minimal rule inherits.
func TestParseRuleDefaults(t *testing.T) {
	r, err := ParseRule("drift: increase(stream.calib_drift) == 0 over 60s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Severity != DefaultSeverity {
		t.Errorf("severity = %q, want %q", r.Severity, DefaultSeverity)
	}
	if r.For != 0 {
		t.Errorf("for = %v, want 0 (fire immediately)", r.For)
	}
	if r.ResolveHold != DefaultResolveHold {
		t.Errorf("resolve = %v, want %v", r.ResolveHold, DefaultResolveHold)
	}
	if r.Margin != DefaultMargin {
		t.Errorf("margin = %g, want %g", r.Margin, DefaultMargin)
	}
	if r.Expr.Kind != KindIncrease || r.Bound != 0 || r.Op != OpEQ {
		t.Errorf("parsed %+v", r)
	}
}

// TestParseRuleRatio checks the two-counter burn-ratio form.
func TestParseRuleRatio(t *testing.T) {
	r, err := ParseRule("drops: rate(stream.dropped_frames) / rate(stream.frames) < 1e-3 over 60s")
	if err != nil {
		t.Fatal(err)
	}
	if r.Expr.Kind != KindRatio || r.Expr.Counter != "stream.dropped_frames" || r.Expr.Denom != "stream.frames" {
		t.Errorf("expr = %+v", r.Expr)
	}
	if r.Bound != 1e-3 {
		t.Errorf("bound = %g", r.Bound)
	}
	if got := r.Expr.String(); got != "rate(stream.dropped_frames) / rate(stream.frames)" {
		t.Errorf("expr string = %q", got)
	}
}

// TestParseRuleRejects pins the parser's error surface: each line is
// wrong in exactly one way.
func TestParseRuleRejects(t *testing.T) {
	bad := []struct{ line, why string }{
		{"p99(h) < 1 over 1s", "missing name"},
		{"a b: p99(h) < 1 over 1s", "space in name"},
		{`bad"name: p99(h) < 1 over 1s`, "label-unsafe name"},
		{"r: p99(h) < 1", "missing over"},
		{"r: p99(h) 1 over 1s", "missing op"},
		{"r: p42(h) < 1 over 1s", "unknown quantile fn"},
		{"r: max(h) < 1 over 1s", "unknown function"},
		{"r: p99(h) < nope over 1s", "unparseable bound"},
		{"r: p99(h) < -5ms over 1s", "negative duration bound"},
		{"r: p99(h) < 1 over 1s for", "dangling keyword"},
		{"r: p99(h) < 1 over 0s", "zero window"},
		{"r: p99(h) < 1 over 1s margin 1.5", "margin out of range"},
		{"r: p99(h) < 1 over 1s for -1s", "negative for"},
		{"r: p99(h) < 1 over 1s bogus 3", "unknown keyword"},
		{"r: increase(a) / rate(b) < 1 over 1s", "ratio operand not rate"},
		{"r: rate(a,b) < 1 over 1s", "comma in instrument"},
	}
	for _, tc := range bad {
		if _, err := ParseRule(tc.line); err == nil {
			t.Errorf("ParseRule(%q) accepted; want error (%s)", tc.line, tc.why)
		}
	}
}

// TestParseRulesFile checks comments, blanks, and duplicate rejection.
func TestParseRulesFile(t *testing.T) {
	rules, err := ParseRules(`
# tail latency
lat: p99(h) < 250ms over 60s

shed: rate(c) < 1 over 30s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "lat" || rules[1].Name != "shed" {
		t.Fatalf("rules = %+v", rules)
	}

	if _, err := ParseRules("a: p99(h) < 1 over 1s\na: p99(h) < 2 over 1s"); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate names: err = %v", err)
	}
	if _, err := ParseRules("# only comments\n\n"); err == nil {
		t.Error("comment-only file accepted; want no-rules error")
	}
}

// TestDefaultRules ensures the built-in set stays parseable and covers
// the instruments hideseekd actually emits.
func TestDefaultRules(t *testing.T) {
	rules := DefaultRules()
	if len(rules) < 4 {
		t.Fatalf("%d default rules, want at least 4", len(rules))
	}
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
		if r.Window <= 0 {
			t.Errorf("rule %q has no window", r.Name)
		}
	}
	for _, want := range []string{"verdict_latency", "drop_ratio", "shed_burn", "calib_drift"} {
		if !names[want] {
			t.Errorf("default rules lack %q (have %v)", want, names)
		}
	}
}
