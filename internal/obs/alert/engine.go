package alert

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hideseek/internal/obs"
)

// State is a rule's position in the alert lifecycle.
type State int

const (
	StateInactive State = iota
	StatePending
	StateFiring
	StateResolved
)

func (s State) String() string {
	switch s {
	case StateInactive:
		return "inactive"
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	}
	return "unknown"
}

// Transition is one recorded state change, kept in the history ring.
type Transition struct {
	Rule  string    `json:"rule"`
	From  string    `json:"from"`
	To    string    `json:"to"`
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// RuleStatus is the /v1/alerts view of one rule: the manifest sample
// plus the compiled objective, for operators reading the endpoint cold.
type RuleStatus struct {
	obs.AlertSample
	Expr   string `json:"expr"`
	Op     string `json:"op"`
	Window string `json:"window"`
	Slow   string `json:"slow_window"`
}

// Status is the full /v1/alerts payload.
type Status struct {
	Rules   []RuleStatus `json:"rules"`
	History []Transition `json:"history,omitempty"`
}

// Config configures an Engine.
type Config struct {
	// Registry to evaluate against (obs.Std() when nil).
	Registry *obs.Registry
	// Rules to run (DefaultRules() when empty).
	Rules []Rule
	// Every is the evaluation period (1s when 0).
	Every time.Duration
	// History is the transition ring capacity (256 when 0).
	History int
	// Now overrides the clock (tests).
	Now func() time.Time
}

// compiledRule is a rule plus its live state.
type compiledRule struct {
	Rule
	slow       time.Duration // derived slow window
	state      State
	since      time.Time // when the current state was entered
	pendingAt  time.Time // when the current breach streak began
	healthyAt  time.Time // start of the continuous margin-healthy streak (firing only)
	firedTotal int64
	lastValue  float64 // last fast-window evaluation
}

// counterRing tracks one counter's recent cumulative samples so rate()
// and increase() can diff against the value a window ago. Fixed
// capacity, overwritten in place.
type counterRing struct {
	c   *obs.Counter
	buf []counterSample
	n   int // samples stored (saturates at len(buf))
	w   int // next write index
}

type counterSample struct {
	at time.Time
	v  int64
}

func (r *counterRing) push(at time.Time, v int64) {
	r.buf[r.w] = counterSample{at: at, v: v}
	r.w = (r.w + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// at returns the newest sample no newer than t, falling back to the
// oldest stored sample when the ring does not reach back that far.
// ok is false when the ring is empty.
func (r *counterRing) at(t time.Time) (counterSample, bool) {
	if r.n == 0 {
		return counterSample{}, false
	}
	oldest := (r.w - r.n + len(r.buf)) % len(r.buf)
	best := r.buf[oldest]
	for i := 0; i < r.n; i++ {
		s := r.buf[(oldest+i)%len(r.buf)]
		if s.at.After(t) {
			break
		}
		best = s
	}
	return best, true
}

// Engine evaluates rules against a registry on a fixed period. Create
// with New, then Start to launch the background evaluator; step is
// exported to tests via the in-package seam.
type Engine struct {
	mu      sync.Mutex
	reg     *obs.Registry
	rules   []*compiledRule
	rings   map[string]*counterRing
	every   time.Duration
	now     func() time.Time
	history []Transition
	histCap int
	stop    chan struct{}
	done    chan struct{}
	started bool
	stopped bool

	// evalFn is the expression evaluator, replaceable by tests to drive
	// the state machine deterministically. Returns the value and whether
	// the window held any data (no data is always healthy).
	evalFn func(e *Expr, window time.Duration, now time.Time) (float64, bool)
}

// New compiles the rules and returns a stopped engine.
func New(cfg Config) (*Engine, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Std()
	}
	rules := cfg.Rules
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	every := cfg.Every
	if every <= 0 {
		every = time.Second
	}
	histCap := cfg.History
	if histCap <= 0 {
		histCap = 256
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	e := &Engine{
		reg:     reg,
		rings:   map[string]*counterRing{},
		every:   every,
		now:     now,
		histCap: histCap,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	e.evalFn = e.evalExpr

	seen := map[string]bool{}
	var slowest time.Duration
	for _, r := range rules {
		if seen[r.Name] {
			return nil, fmt.Errorf("alert: duplicate rule %q", r.Name)
		}
		seen[r.Name] = true
		cr := &compiledRule{Rule: r, slow: slowWindow(r.Window)}
		e.rules = append(e.rules, cr)
		if cr.slow > slowest {
			slowest = cr.slow
		}
		for _, name := range exprCounters(r.Expr) {
			if _, ok := e.rings[name]; !ok {
				e.rings[name] = &counterRing{c: reg.Counter(name)}
			}
		}
	}
	// Ring reach: the slowest window plus slack, bounded so a tiny Every
	// cannot balloon memory.
	slots := int(slowest/every) + 2
	if slots < 4 {
		slots = 4
	}
	if slots > 4096 {
		slots = 4096
	}
	for _, r := range e.rings {
		r.buf = make([]counterSample, slots)
	}
	return e, nil
}

// slowWindow derives the confirmation window: twice the fast window,
// capped at the histogram ring's reach.
func slowWindow(fast time.Duration) time.Duration {
	slow := 2 * fast
	if slow > obs.WindowLong {
		slow = obs.WindowLong
	}
	if slow < fast {
		slow = fast
	}
	return slow
}

// exprCounters lists the counter instruments an expression reads.
func exprCounters(x Expr) []string {
	switch x.Kind {
	case KindRate, KindIncrease:
		return []string{x.Counter}
	case KindRatio:
		return []string{x.Counter, x.Denom}
	}
	return nil
}

// Start launches the background evaluator goroutine.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.every)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.step(e.now())
			}
		}
	}()
}

// Stop halts the evaluator (idempotent; safe on a nil or never-started
// engine).
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	started := e.started
	e.mu.Unlock()
	close(e.stop)
	if started {
		<-e.done
	}
}

// step runs one evaluation pass at the given instant.
func (e *Engine) step(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Sample every tracked counter first so all rules this step see the
	// same instant.
	for _, r := range e.rings {
		r.push(now, r.c.Value())
	}
	for _, cr := range e.rules {
		e.stepRule(cr, now)
	}
}

// stepRule evaluates one rule's windows and advances its state machine.
func (e *Engine) stepRule(cr *compiledRule, now time.Time) {
	fastVal, fastHas := e.evalFn(&cr.Expr, cr.Window, now)
	slowVal, slowHas := e.evalFn(&cr.Expr, cr.slow, now)
	cr.lastValue = fastVal

	// A window with no data is healthy: absence of traffic must not
	// page, and quantiles of nothing are meaningless.
	breach := fastHas && !healthy(cr.Op, fastVal, cr.Bound, 0) &&
		slowHas && !healthy(cr.Op, slowVal, cr.Bound, 0)
	calm := (!fastHas || healthy(cr.Op, fastVal, cr.Bound, cr.Margin)) &&
		(!slowHas || healthy(cr.Op, slowVal, cr.Bound, cr.Margin))

	switch cr.state {
	case StateInactive, StateResolved:
		if breach {
			cr.pendingAt = now
			e.transition(cr, StatePending, now)
			if cr.For <= 0 {
				cr.firedTotal++
				cr.healthyAt = time.Time{}
				e.transition(cr, StateFiring, now)
			}
		}
	case StatePending:
		switch {
		case !breach:
			// Flap suppression: the breach did not survive the hold.
			e.transition(cr, StateInactive, now)
		case now.Sub(cr.pendingAt) >= cr.For:
			cr.firedTotal++
			cr.healthyAt = time.Time{}
			e.transition(cr, StateFiring, now)
		}
	case StateFiring:
		if !calm {
			// Any non-healthy step restarts the recovery clock — the
			// admission-tier hold-down pattern.
			cr.healthyAt = time.Time{}
			return
		}
		if cr.healthyAt.IsZero() {
			cr.healthyAt = now
		}
		if now.Sub(cr.healthyAt) >= cr.ResolveHold {
			e.transition(cr, StateResolved, now)
		}
	}
}

// transition moves a rule to a new state and records it.
func (e *Engine) transition(cr *compiledRule, to State, now time.Time) {
	tr := Transition{Rule: cr.Name, From: cr.state.String(), To: to.String(), At: now, Value: cr.lastValue}
	cr.state = to
	cr.since = now
	e.history = append(e.history, tr)
	if over := len(e.history) - e.histCap; over > 0 {
		e.history = append(e.history[:0], e.history[over:]...)
	}
}

// healthy reports whether v meets the objective, tightened by margin
// (margin 0 is the plain objective; margin 0.1 demands 10% headroom).
func healthy(op Op, v, bound, margin float64) bool {
	switch op {
	case OpLT:
		return v < bound*(1-margin)
	case OpLE:
		return v <= bound*(1-margin)
	case OpGT:
		return v > bound*(1+margin)
	case OpGE:
		return v >= bound*(1+margin)
	case OpEQ:
		return v == bound
	}
	return true
}

// budget converts the current value into fraction-of-error-budget
// remaining: 1 at rest, 0 at or past the bound.
func budget(op Op, v, bound float64) float64 {
	var b float64
	switch op {
	case OpLT, OpLE:
		if bound == 0 {
			if v <= 0 {
				return 1
			}
			return 0
		}
		b = 1 - v/bound
	case OpGT, OpGE:
		if bound == 0 {
			if v > 0 {
				return 1
			}
			return 0
		}
		b = v/bound - 1
	case OpEQ:
		if v == bound {
			return 1
		}
		return 0
	}
	if b < 0 {
		return 0
	}
	if b > 1 {
		return 1
	}
	return b
}

// evalExpr is the production evaluator: windowed histogram quantiles
// and counter-ring rates.
func (e *Engine) evalExpr(x *Expr, window time.Duration, now time.Time) (float64, bool) {
	switch x.Kind {
	case KindQuantile:
		st := e.reg.Histogram(x.Hist).Window(window)
		if st.Count == 0 {
			return 0, false
		}
		switch x.Quantile {
		case 0.50:
			return st.P50, true
		case 0.95:
			return st.P95, true
		default:
			return st.P99, true
		}
	case KindRate:
		return e.counterRate(x.Counter, window, now)
	case KindIncrease:
		inc, ok := e.counterIncrease(x.Counter, window, now)
		return inc, ok
	case KindRatio:
		num, okN := e.counterRate(x.Counter, window, now)
		den, okD := e.counterRate(x.Denom, window, now)
		if !okN || !okD || den == 0 {
			// No denominator traffic: the ratio is vacuously healthy.
			return 0, den != 0 && okN && okD
		}
		return num / den, true
	}
	return 0, false
}

// counterIncrease returns a counter's growth over the window.
func (e *Engine) counterIncrease(name string, window time.Duration, now time.Time) (float64, bool) {
	r := e.rings[name]
	if r == nil {
		return 0, false
	}
	old, ok := r.at(now.Add(-window))
	if !ok {
		return 0, false
	}
	return float64(r.c.Value() - old.v), true
}

// counterRate returns a counter's per-second rate over the window,
// using the actual covered span when the ring is younger than the
// window.
func (e *Engine) counterRate(name string, window time.Duration, now time.Time) (float64, bool) {
	r := e.rings[name]
	if r == nil {
		return 0, false
	}
	old, ok := r.at(now.Add(-window))
	if !ok {
		return 0, false
	}
	span := now.Sub(old.at).Seconds()
	if span <= 0 {
		return 0, false
	}
	return float64(r.c.Value()-old.v) / span, true
}

// Samples returns the manifest/exposition view of every rule, sorted by
// name.
func (e *Engine) Samples() []obs.AlertSample {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]obs.AlertSample, 0, len(e.rules))
	for _, cr := range e.rules {
		s := obs.AlertSample{
			Name:            cr.Name,
			Severity:        cr.Severity,
			State:           cr.state.String(),
			Value:           cr.lastValue,
			Bound:           cr.Bound,
			BudgetRemaining: budget(cr.Op, cr.lastValue, cr.Bound),
			FiredTotal:      cr.firedTotal,
		}
		if !cr.since.IsZero() {
			s.SinceUnixMS = cr.since.UnixMilli()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// History returns a copy of the transition ring, oldest first.
func (e *Engine) History() []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Transition(nil), e.history...)
}

// Status returns the /v1/alerts payload: per-rule status plus history.
func (e *Engine) Status() Status {
	samples := e.Samples()
	e.mu.Lock()
	byName := make(map[string]*compiledRule, len(e.rules))
	for _, cr := range e.rules {
		byName[cr.Name] = cr
	}
	st := Status{Rules: make([]RuleStatus, 0, len(samples))}
	for _, s := range samples {
		cr := byName[s.Name]
		st.Rules = append(st.Rules, RuleStatus{
			AlertSample: s,
			Expr:        cr.Expr.String(),
			Op:          string(cr.Op),
			Window:      cr.Window.String(),
			Slow:        cr.slow.String(),
		})
	}
	e.mu.Unlock()
	st.History = e.History()
	return st
}
