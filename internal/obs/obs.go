// Package obs is the zero-dependency observability layer: named atomic
// counters, monotonic timers, and lock-sharded value histograms, all cheap
// enough to stay enabled on the DSP hot path, plus a JSON-serializable
// snapshot ("run manifest") of everything measured.
//
// Contract:
//
//   - Instruments are write-only from the measured code's point of view:
//     nothing in this package influences simulation results, and nothing
//     here ever writes to stdout. Telemetry is pulled by callers (the
//     -manifest flag, the -progress ticker) and routed to stderr or files,
//     preserving the byte-identical-stdout guarantee of cmd/experiments.
//
//   - Hot-path cost is one or two atomic adds per event (Counter, Timer)
//     or one short critical section on a value-sharded mutex (Histogram).
//     Callers look instruments up once (package-level vars) and keep the
//     pointer; lookup itself takes the registry mutex.
//
//   - Names are dotted paths, "<package>.<stage>": "runner.trial_errors",
//     "emulation.emulate", "zigbee.despread". The name is the identity —
//     looking up the same name twice returns the same instrument.
package obs

import (
	"sort"
	"sync"
)

// Registry is a named collection of instruments. The zero value is not
// usable; call NewRegistry. Most code uses the package-level standard
// registry through C, T, H, and Snap.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	timers   map[string]*Timer
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
		gauges:   map[string]*Gauge{},
	}
}

// std is the process-wide registry behind the package-level helpers.
var std = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset discards every instrument in the registry. Existing pointers keep
// working but are no longer reachable from snapshots — callers that cache
// instruments in package vars should re-fetch after a Reset. Intended for
// tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.timers = map[string]*Timer{}
	r.hists = map[string]*Histogram{}
	r.gauges = map[string]*Gauge{}
}

// names returns the sorted instrument names of one kind (for stable
// snapshot ordering in tests and diffs).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// C returns the named counter from the standard registry.
func C(name string) *Counter { return std.Counter(name) }

// T returns the named timer from the standard registry.
func T(name string) *Timer { return std.Timer(name) }

// H returns the named histogram from the standard registry.
func H(name string) *Histogram { return std.Histogram(name) }

// Std returns the standard registry itself (snapshotting, tests).
func Std() *Registry { return std }
