package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestTopKExact: with capacity for every distinct key the sketch is an
// exact counter — no error bounds, true counts, deterministic order.
func TestTopKExact(t *testing.T) {
	k := NewTopK(8)
	k.Add("a", 3)
	k.Add("b", 1)
	k.Add("a", 2)
	k.Add("c", 4)
	got := k.Top(0)
	want := []TopKEntry{{Key: "a", Count: 5}, {Key: "c", Count: 4}, {Key: "b", Count: 1}}
	if len(got) != len(want) {
		t.Fatalf("top = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("top[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// k smaller than stored keys truncates.
	if got := k.Top(2); len(got) != 2 || got[0].Key != "a" {
		t.Fatalf("top(2) = %+v", got)
	}
	// Ties order by key for stable output.
	k2 := NewTopK(4)
	k2.Add("z", 1)
	k2.Add("m", 1)
	if got := k2.Top(0); got[0].Key != "m" || got[1].Key != "z" {
		t.Fatalf("tie order %+v", got)
	}
}

// TestTopKIgnoresBadInput: nil receiver and non-positive weights are
// no-ops, and NewTopK clamps a degenerate capacity.
func TestTopKIgnoresBadInput(t *testing.T) {
	var nilK *TopK
	nilK.Add("x", 1) // must not panic
	k := NewTopK(0)  // clamps to 1
	k.Add("x", 0)
	k.Add("x", -5)
	if got := k.Top(0); len(got) != 0 {
		t.Fatalf("non-positive weights counted: %+v", got)
	}
}

// TestTopKHeavyHitters: space-saving guarantees. A stream with a few
// heavy keys and a long cold tail, capacity far below the distinct
// count: the heavies must survive, every estimate must over- (never
// under-) count, and Count-Err is a valid lower bound.
func TestTopKHeavyHitters(t *testing.T) {
	const capacity = 16
	k := NewTopK(capacity)
	truth := map[string]float64{}
	add := func(key string, w float64) {
		k.Add(key, w)
		truth[key] += w
	}
	// Interleave heavies with the tail so evictions happen throughout.
	for i := 0; i < 400; i++ {
		add("hot-a", 5)
		add("hot-b", 3)
		if i%4 == 0 {
			add("warm", 4)
		}
		add(fmt.Sprintf("cold-%d", i), 1)
	}
	var total float64
	for _, v := range truth {
		total += v
	}

	got := k.Top(0)
	if len(got) > capacity {
		t.Fatalf("sketch holds %d entries, capacity %d", len(got), capacity)
	}
	byKey := map[string]TopKEntry{}
	for _, e := range got {
		byKey[e.Key] = e
	}
	// Any key with true share > total/capacity is guaranteed present.
	for _, heavy := range []string{"hot-a", "hot-b", "warm"} {
		e, ok := byKey[heavy]
		if !ok {
			t.Fatalf("heavy hitter %q (true %g, threshold %g) evicted", heavy, truth[heavy], total/capacity)
		}
		if e.Count < truth[heavy] {
			t.Errorf("%q: estimate %g under-counts true %g", heavy, e.Count, truth[heavy])
		}
		if e.Count-e.Err > truth[heavy] {
			t.Errorf("%q: lower bound %g exceeds true %g", heavy, e.Count-e.Err, truth[heavy])
		}
	}
	// The over-count invariant holds for every entry, not just heavies.
	for _, e := range got {
		if e.Count < truth[e.Key] {
			t.Errorf("%q: estimate %g < true %g", e.Key, e.Count, truth[e.Key])
		}
	}
	// The heavies dominate the ranking.
	if got[0].Key != "hot-a" {
		t.Errorf("top entry %+v, want hot-a", got[0])
	}
}

// TestTopKMerge: merging shard sketches keeps the over-count invariant
// and sums both counts and error bounds.
func TestTopKMerge(t *testing.T) {
	a := NewTopK(8)
	b := NewTopK(8)
	a.Add("x", 10)
	a.Add("y", 2)
	b.Add("x", 5)
	b.Add("z", 7)
	m := NewTopK(8)
	m.Merge(a.Top(0))
	m.Merge(b.Top(0))
	got := m.Top(0)
	byKey := map[string]TopKEntry{}
	for _, e := range got {
		byKey[e.Key] = e
	}
	if e := byKey["x"]; e.Count != 15 {
		t.Errorf("merged x = %+v, want count 15", e)
	}
	if e := byKey["z"]; e.Count != 7 {
		t.Errorf("merged z = %+v", e)
	}
	if got[0].Key != "x" {
		t.Errorf("merged top %+v, want x first", got[0])
	}
}

// TestTopKConcurrent hammers Add/Top/Merge from many goroutines; run
// with -race this is the locking contract for the per-shard sketches.
func TestTopKConcurrent(t *testing.T) {
	k := NewTopK(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k.Add(fmt.Sprintf("key-%d", (g*31+i)%100), 1)
				if i%64 == 0 {
					k.Top(5)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := NewTopK(32)
		for i := 0; i < 200; i++ {
			m.Merge(k.Top(0))
		}
	}()
	wg.Wait()
	var total float64
	for _, e := range k.Top(0) {
		total += e.Count
	}
	if total > 8*2000 {
		t.Fatalf("sketch total %g exceeds stream weight %d", total, 8*2000)
	}
}
