package obs

import (
	"sync"
	"time"
)

// Rolling-window geometry: a ring of 12 interval shards of 10 s each, so
// a histogram can answer "last 60 s" and "last 2 min" quantiles while a
// long-running daemon keeps its cumulative-since-boot series. Memory is
// fixed: 12 × histBuckets uint32 per histogram, reused forever.
const (
	windowSlots   = 12
	windowSlotDur = 10 * time.Second
	// WindowShort and WindowLong are the two window widths snapshots and
	// endpoints report (see Snapshot.Windows and WindowedStats).
	WindowShort = 60 * time.Second
	WindowLong  = windowSlots * windowSlotDur
)

// winSlot is one 10 s interval of observations. epoch is the slot's
// absolute interval index (unix time / windowSlotDur); a slot whose epoch
// is stale is reset in place when its ring position comes around again.
type winSlot struct {
	epoch  int64
	n      uint64
	sum    float64
	min    float64
	max    float64
	counts [histBuckets]uint32
}

// histWindow is the rolling ring behind Histogram.Window. One mutex
// guards the whole ring: windowed observations ride the same per-frame /
// per-trial event rates as the sharded cumulative path (never per-sample
// loops), so a single short critical section is cheap enough.
type histWindow struct {
	mu    sync.Mutex
	slots [windowSlots]winSlot
}

// observe records v into the interval containing now.
func (w *histWindow) observe(v float64, now time.Time) { w.observeN(v, 1, now) }

// observeN records n observations of v into the interval containing now
// (the bulk form behind Histogram.ObserveN).
func (w *histWindow) observeN(v float64, n uint64, now time.Time) {
	epoch := now.UnixNano() / int64(windowSlotDur)
	s := &w.slots[epoch%windowSlots]
	w.mu.Lock()
	if s.epoch != epoch {
		*s = winSlot{epoch: epoch}
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n += n
	s.sum += v * float64(n)
	s.counts[bucketOf(v)] += clampUint32(n)
	w.mu.Unlock()
}

// stats merges every slot that falls inside the last d (ending at now)
// into one summary. d is rounded up to whole intervals and clamped to the
// ring's reach.
func (w *histWindow) stats(now time.Time, d time.Duration) HistogramStats {
	if d <= 0 {
		return HistogramStats{}
	}
	intervals := int64((d + windowSlotDur - 1) / windowSlotDur)
	if intervals > windowSlots {
		intervals = windowSlots
	}
	nowEpoch := now.UnixNano() / int64(windowSlotDur)
	oldest := nowEpoch - intervals + 1

	var merged [histBuckets]uint64
	var n uint64
	var min, max, sum float64
	w.mu.Lock()
	for i := range w.slots {
		s := &w.slots[i]
		if s.n == 0 || s.epoch < oldest || s.epoch > nowEpoch {
			continue
		}
		if n == 0 || s.min < min {
			min = s.min
		}
		if n == 0 || s.max > max {
			max = s.max
		}
		n += s.n
		sum += s.sum
		for b, c := range s.counts {
			merged[b] += uint64(c)
		}
	}
	w.mu.Unlock()
	return statsFromMerged(merged[:], n, min, max, sum)
}

// WindowedStats pairs the two rolling-window summaries every histogram
// maintains: the last ~60 s and the last ~2 min.
type WindowedStats struct {
	Last60s  HistogramStats `json:"last_60s"`
	Last120s HistogramStats `json:"last_120s"`
}

// Windowed returns both rolling summaries of the histogram at once.
func (h *Histogram) Windowed() WindowedStats {
	now := time.Now()
	return WindowedStats{
		Last60s:  h.win.stats(now, WindowShort),
		Last120s: h.win.stats(now, WindowLong),
	}
}
