package obs

// AlertSample is one SLO rule's externally visible state, as produced by
// the alert engine (internal/obs/alert) and carried on snapshots so the
// /metrics exposition and the run manifest see the same view. It lives
// in obs — not the alert package — so Snapshot does not import its own
// consumer.
type AlertSample struct {
	Name     string `json:"name"`
	Severity string `json:"severity"`
	// State is one of inactive, pending, firing, resolved.
	State string `json:"state"`
	// Value is the rule expression's last fast-window evaluation; Bound
	// is the objective it is compared against.
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
	// BudgetRemaining is the fraction of error budget left in [0, 1]:
	// 1 when the expression is at rest, 0 at or past the bound.
	BudgetRemaining float64 `json:"budget_remaining"`
	// FiredTotal counts pending→firing transitions since boot, so a
	// shutdown manifest still records alerts that fired and resolved.
	FiredTotal int64 `json:"fired_total"`
	// SinceUnixMS is when the rule entered its current state (0 for a
	// rule that has never left inactive).
	SinceUnixMS int64 `json:"since_unix_ms,omitempty"`
}

// validAlertName reports whether a rule name is safe to carry as a
// Prometheus label value without escaping: it must not contain the
// quote, comma, equals, or backslash characters the exposition grammar
// reserves. The alert rule parser enforces a stricter charset; this is
// the emission-side backstop.
func validAlertName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_', r == '.', r == ':', r == '-', r == '/':
		default:
			return false
		}
	}
	return true
}
