package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus is the in-repo Prometheus text-format checker behind
// `make obs-smoke`: it parses an exposition (format 0.0.4) and enforces
// the invariants a real scraper relies on —
//
//   - every line is a well-formed comment or sample (name, optional
//     labels, float value);
//   - TYPE declarations name a known type and precede their samples;
//   - no series (name + label set) appears twice;
//   - counter samples are finite and non-negative;
//   - histogram families have monotone non-decreasing cumulative buckets
//     with strictly increasing le edges, a +Inf bucket, and a _count
//     equal to the +Inf bucket; _sum and _count must both be present.
//
// It returns the first violation found (with its line number), or nil.
func LintPrometheus(r io.Reader) error {
	l := newPromLint()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		l.line++
		if err := l.feed(sc.Text()); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("promlint: read: %w", err)
	}
	return l.finish()
}

// promSample is one parsed sample line.
type promSample struct {
	line   int
	labels string // canonicalized label string ("" when none)
	le     string // value of the le label, histograms only
	value  float64
}

// promFamily accumulates one metric family's declared type and samples.
type promFamily struct {
	typ     string
	samples map[string][]promSample // keyed by suffix: "", _bucket, _sum, _count...
}

type promLint struct {
	line     int
	families map[string]*promFamily
	order    []string
	seen     map[string]int // series (name{labels}) → first line
}

func newPromLint() *promLint {
	return &promLint{
		families: map[string]*promFamily{},
		seen:     map[string]int{},
	}
}

func (l *promLint) errf(format string, args ...any) error {
	return fmt.Errorf("promlint: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// feed consumes one exposition line.
func (l *promLint) feed(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return l.feedComment(line)
	}
	return l.feedSample(line)
}

func (l *promLint) feedComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return l.errf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return l.errf("invalid metric name %q in TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return l.errf("unknown metric type %q for %q", typ, name)
		}
		if f := l.families[name]; f != nil && f.typ != "" {
			return l.errf("duplicate TYPE for %q", name)
		}
		l.family(name).typ = typ
	case "HELP":
		if len(fields) < 3 {
			return l.errf("malformed HELP comment %q", line)
		}
	}
	return nil
}

// family returns (creating) the family record for a base name.
func (l *promLint) family(name string) *promFamily {
	f, ok := l.families[name]
	if !ok {
		f = &promFamily{samples: map[string][]promSample{}}
		l.families[name] = f
		l.order = append(l.order, name)
	}
	return f
}

// feedSample parses `name{labels} value [timestamp]`.
func (l *promLint) feedSample(line string) error {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd < 0 {
		return l.errf("sample without value: %q", line)
	}
	name := rest[:nameEnd]
	if !validMetricName(name) {
		return l.errf("invalid metric name %q", name)
	}
	rest = rest[nameEnd:]
	var labels, le string
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return l.errf("unterminated label set: %q", line)
		}
		var err error
		labels, le, err = parseLabels(rest[1:end])
		if err != nil {
			return l.errf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return l.errf("expected value (and optional timestamp) after %q", name)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return l.errf("bad value %q for %q", fields[0], name)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return l.errf("bad timestamp %q for %q", fields[1], name)
		}
	}
	series := name + "{" + labels + "}"
	if first, dup := l.seen[series]; dup {
		return l.errf("duplicate series %s (first at line %d)", series, first)
	}
	l.seen[series] = l.line

	base, suffix := splitFamily(name, l.families)
	f := l.family(base)
	f.samples[suffix] = append(f.samples[suffix], promSample{line: l.line, labels: labels, le: le, value: v})
	return nil
}

// splitFamily resolves which declared family a sample belongs to: the
// longest declared base name the sample name extends with a known suffix,
// else the sample name itself.
func splitFamily(name string, families map[string]*promFamily) (base, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		b := strings.TrimSuffix(name, s)
		if b == name {
			continue
		}
		if f, ok := families[b]; ok && (f.typ == "histogram" || f.typ == "summary") {
			return b, s
		}
	}
	return name, ""
}

// parseLabels validates `k="v",k2="v2"` pairs and returns the canonical
// label string plus the value of le, if present.
func parseLabels(s string) (canon, le string, err error) {
	if s == "" {
		return "", "", nil
	}
	for _, pair := range strings.Split(s, ",") {
		eq := strings.Index(pair, "=")
		if eq < 0 {
			return "", "", fmt.Errorf("label pair %q without '='", pair)
		}
		k, v := pair[:eq], pair[eq+1:]
		if !validLabelName(k) {
			return "", "", fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "", "", fmt.Errorf("label value %s not quoted", v)
		}
		if k == "le" {
			le = v[1 : len(v)-1]
		}
	}
	return s, le, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return s != ""
}

// finish runs the whole-family checks once every line has been fed.
func (l *promLint) finish() error {
	for _, name := range l.order {
		f := l.families[name]
		if err := l.checkFamily(name, f); err != nil {
			return err
		}
	}
	return nil
}

func (l *promLint) checkFamily(name string, f *promFamily) error {
	fail := func(line int, format string, args ...any) error {
		return fmt.Errorf("promlint: line %d: %s", line, fmt.Sprintf(format, args...))
	}
	switch f.typ {
	case "counter":
		for _, s := range f.samples[""] {
			if s.value < 0 || math.IsNaN(s.value) || math.IsInf(s.value, 0) {
				return fail(s.line, "counter %s has non-monotonic-capable value %g", name, s.value)
			}
		}
	case "histogram":
		buckets := f.samples["_bucket"]
		if len(buckets) == 0 {
			return fmt.Errorf("promlint: histogram %s has no _bucket series", name)
		}
		// Group buckets by their non-le labels; our expositions carry only
		// le, so this is one group.
		groups := map[string][]promSample{}
		for _, b := range buckets {
			if b.le == "" {
				return fail(b.line, "histogram %s bucket without le label", name)
			}
			key := stripLe(b.labels)
			groups[key] = append(groups[key], b)
		}
		counts := f.samples["_count"]
		if len(f.samples["_sum"]) == 0 || len(counts) == 0 {
			return fmt.Errorf("promlint: histogram %s missing _sum or _count", name)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			bs := groups[key]
			prevLe := math.Inf(-1)
			prevCount := -1.0
			sawInf := false
			for _, b := range bs {
				edge, err := parsePromValue(b.le)
				if err != nil {
					return fail(b.line, "histogram %s has unparseable le=%q", name, b.le)
				}
				if edge <= prevLe {
					return fail(b.line, "histogram %s buckets not in increasing le order (%g after %g)", name, edge, prevLe)
				}
				if b.value < prevCount {
					return fail(b.line, "histogram %s cumulative bucket counts decrease (%g after %g)", name, b.value, prevCount)
				}
				prevLe, prevCount = edge, b.value
				if math.IsInf(edge, 1) {
					sawInf = true
					if got := totalFor(counts, key); got != b.value {
						return fail(b.line, "histogram %s _count %g != +Inf bucket %g", name, got, b.value)
					}
				}
			}
			if !sawInf {
				return fmt.Errorf("promlint: histogram %s lacks a le=\"+Inf\" bucket", name)
			}
		}
	case "summary":
		if len(f.samples["_sum"]) == 0 || len(f.samples["_count"]) == 0 {
			return fmt.Errorf("promlint: summary %s missing _sum or _count", name)
		}
		for _, s := range f.samples["_count"] {
			if s.value < 0 {
				return fail(s.line, "summary %s has negative _count", name)
			}
		}
	}
	return nil
}

// stripLe removes the le pair from a canonical label string so buckets
// group by their remaining labels.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	var kept []string
	for _, pair := range strings.Split(labels, ",") {
		if !strings.HasPrefix(pair, "le=") {
			kept = append(kept, pair)
		}
	}
	return strings.Join(kept, ",")
}

// totalFor finds the _count sample matching a bucket group's labels.
func totalFor(counts []promSample, key string) float64 {
	for _, c := range counts {
		if stripLe(c.labels) == key {
			return c.value
		}
	}
	return math.NaN()
}
