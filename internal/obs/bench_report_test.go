package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validBenchReport() *BenchReport {
	r := NewBenchReport("100ms", "Synchronize", []string{"./internal/zigbee"})
	r.Benchmarks = []BenchResult{{
		Package: "hideseek/internal/zigbee", Name: "Synchronize", Procs: 1,
		Iterations: 100, NsPerOp: 12345.6, BytesPerOp: 0, AllocsPerOp: 0,
		Extra: map[string]float64{"scan-p50-ns": 1000},
	}}
	return r
}

func TestBenchReportValidate(t *testing.T) {
	if err := validBenchReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	zeroed := validBenchReport()
	zeroed.CreatedAt = time.Time{}
	if err := zeroed.Validate(); err == nil {
		t.Error("accepted zero creation time")
	}
	breakages := []struct {
		name  string
		mut   func(*BenchReport)
		wants string
	}{
		{"schema", func(r *BenchReport) { r.Schema = "nope" }, "schema"},
		{"benchtime", func(r *BenchReport) { r.Benchtime = "" }, "benchtime"},
		{"empty", func(r *BenchReport) { r.Benchmarks = nil }, "no benchmarks"},
		{"name", func(r *BenchReport) { r.Benchmarks[0].Name = "" }, "empty name"},
		{"package", func(r *BenchReport) { r.Benchmarks[0].Package = "" }, "no package"},
		{"iterations", func(r *BenchReport) { r.Benchmarks[0].Iterations = 0 }, "iterations"},
		{"nsop", func(r *BenchReport) { r.Benchmarks[0].NsPerOp = 0 }, "ns/op"},
		{"negalloc", func(r *BenchReport) { r.Benchmarks[0].AllocsPerOp = -1 }, "negative"},
	}
	for _, tc := range breakages {
		r := validBenchReport()
		tc.mut(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: breakage accepted", tc.name)
			continue
		}
		if tc.wants != "" && !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wants)
		}
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := validBenchReport()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 12345.6 {
		t.Errorf("round trip lost data: %+v", got.Benchmarks)
	}
	if got.Benchmarks[0].Extra["scan-p50-ns"] != 1000 {
		t.Errorf("round trip lost extra metrics: %+v", got.Benchmarks[0].Extra)
	}
}

func TestBenchReportStrictDecode(t *testing.T) {
	if _, err := DecodeBenchReport([]byte(`{"schema":"hideseek.bench-report/v1","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeBenchReport([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
