package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime profiler: a background sampler that turns the Go runtime's
// cumulative event distributions into first-class obs Histograms, so
// scheduler latency and GC pauses get the same rolling windows,
// Prometheus exposition, and SLO alerting as every application metric.
//
// runtime/metrics distributions are cumulative since process start; the
// sampler keeps the previous bucket counts and replays only the deltas
// each tick, observing each new event at its bucket's midpoint (in
// nanoseconds, matching the repo's *_ns histogram convention) via
// ObserveN — one lock acquisition per non-empty bucket, regardless of
// how many events landed in it.

// Instrument names the profiler maintains.
const (
	SchedLatencyHist = "go.sched_latency_ns"
	GCPauseHist      = "go.gc_pause_ns"
)

// profiled metrics and their destination histograms.
var runtimeProfMetrics = []struct {
	metric string
	hist   string
}{
	{"/sched/latencies:seconds", SchedLatencyHist},
	{gcPausesMetric, GCPauseHist},
}

// RuntimeProfiler owns the sampler goroutine. Create with
// StartRuntimeProfiler; Stop is idempotent and waits for the goroutine
// to exit.
type RuntimeProfiler struct {
	reg     *Registry
	every   time.Duration
	stop    chan struct{}
	done    chan struct{}
	stopped bool

	samples []metrics.Sample
	prev    [][]uint64 // previous cumulative counts, per metric
}

// StartRuntimeProfiler begins sampling the runtime distributions into
// reg every interval (default 1s when every <= 0). The first tick
// establishes the baseline — events from before the profiler started
// are not replayed, so a daemon's histograms describe its monitored
// lifetime only.
func StartRuntimeProfiler(reg *Registry, every time.Duration) *RuntimeProfiler {
	if reg == nil {
		reg = std
	}
	if every <= 0 {
		every = time.Second
	}
	p := &RuntimeProfiler{
		reg:   reg,
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		prev:  make([][]uint64, len(runtimeProfMetrics)),
	}
	p.samples = make([]metrics.Sample, len(runtimeProfMetrics))
	for i, m := range runtimeProfMetrics {
		p.samples[i].Name = m.metric
	}
	p.baseline()
	go p.loop()
	return p
}

func (p *RuntimeProfiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			p.tick() // final drain so Stop-then-snapshot sees everything
			return
		case <-t.C:
			p.tick()
		}
	}
}

// Stop halts the sampler after one final drain and waits for it.
func (p *RuntimeProfiler) Stop() {
	if p == nil || p.stopped {
		return
	}
	p.stopped = true
	close(p.stop)
	<-p.done
}

// baseline records the current cumulative counts without observing, so
// the first tick replays only post-start events.
func (p *RuntimeProfiler) baseline() {
	metrics.Read(p.samples)
	for i := range p.samples {
		if p.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := p.samples[i].Value.Float64Histogram()
		p.prev[i] = append([]uint64(nil), h.Counts...)
	}
}

// tick reads the distributions and replays each bucket's new events.
func (p *RuntimeProfiler) tick() {
	metrics.Read(p.samples)
	for i, m := range runtimeProfMetrics {
		if p.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := p.samples[i].Value.Float64Histogram()
		dst := p.reg.Histogram(m.hist)
		prev := p.prev[i]
		if len(prev) != len(h.Counts) {
			// Bucket layout changed (or first read): re-baseline.
			p.prev[i] = append(prev[:0], h.Counts...)
			continue
		}
		for b, c := range h.Counts {
			delta := c - prev[b]
			if delta == 0 {
				continue
			}
			dst.ObserveN(bucketMidpointNS(h.Buckets, b), delta)
			prev[b] = c
		}
	}
}

// bucketMidpointNS picks the representative value (in nanoseconds) for
// a runtime/metrics bucket whose boundaries are in seconds. Unbounded
// edge buckets collapse to their finite boundary.
func bucketMidpointNS(buckets []float64, b int) float64 {
	lo, hi := buckets[b], buckets[b+1]
	var v float64
	switch {
	case math.IsInf(lo, -1):
		v = hi
	case math.IsInf(hi, 1):
		v = lo
	default:
		v = (lo + hi) / 2
	}
	if v < 0 {
		v = 0
	}
	return v * float64(time.Second) / float64(time.Nanosecond)
}
