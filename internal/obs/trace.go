package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Per-frame trace spans. A Trace is allocated when the stream scanner
// commits to a frame and follows it through the pipeline, collecting one
// Span per stage (scan → sync → queue → decode → detect → deliver). The
// trace ID is joined to the frame's Verdict via Verdict.TraceID (and the
// trace itself records the verdict's Seq), so an operator can go from
// "frame #4812 was slow" to exactly which stage the time went to.
//
// Ownership is sequential: exactly one goroutine touches a Trace at a
// time (scanner, then a worker, then the delivery goroutine), with the
// handoffs ordered by the pipeline's existing queue and session mutexes,
// so spans need no lock of their own. All Tracer and Trace methods are
// nil-receiver-safe: a nil *Tracer disables tracing with no other code
// change and near-zero overhead.

// Span is one stage's share of a frame's wall time. StartNS is the
// offset from the trace's start (the scan step that found the frame).
type Span struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Err     string `json:"err,omitempty"`
}

// Trace is the full stage timeline of one frame.
type Trace struct {
	// ID is process-unique and joined to Verdict.TraceID.
	ID uint64 `json:"trace_id"`
	// SID identifies the session (connection/capture) within the engine.
	SID uint64 `json:"sid"`
	// Seq is the frame's sequence number within its session — the join
	// key to Verdict.Seq.
	Seq uint64 `json:"seq"`
	// Proto names the session's victim-PHY protocol, when the pipeline
	// labels traces (cmd/hideseekd sessions do).
	Proto string `json:"proto,omitempty"`
	// Offset is the frame's absolute sample offset in the stream.
	Offset int64 `json:"offset"`
	// Start is the wall-clock time of the scan step that found the frame.
	Start time.Time `json:"start"`
	Spans []Span    `json:"spans"`

	anchor time.Time // monotonic anchor for StartNS offsets
}

// AddSpanDur appends a span with an explicit duration.
func (t *Trace) AddSpanDur(stage string, start time.Time, d time.Duration, err error) {
	if t == nil {
		return
	}
	s := Span{Stage: stage, StartNS: start.Sub(t.anchor).Nanoseconds(), DurNS: d.Nanoseconds()}
	if err != nil {
		s.Err = err.Error()
	}
	t.Spans = append(t.Spans, s)
}

// AddSpan appends a span lasting from start until now.
func (t *Trace) AddSpan(stage string, start time.Time, err error) {
	t.AddSpanDur(stage, start, time.Since(start), err)
}

// TraceID returns the ID (0 for a nil trace — the "tracing off" value
// Verdict.TraceID omits).
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID
}

// TracerConfig sizes a Tracer.
type TracerConfig struct {
	// Ring bounds how many completed traces stay queryable in memory
	// (default 256).
	Ring int
	// Sink, when set, receives every completed trace as one NDJSON line.
	// Writes happen on a dedicated exporter goroutine with a bounded
	// hand-off queue: a slow sink drops traces (counted, see SinkDrops)
	// instead of stalling the pipeline.
	Sink io.Writer
}

// Tracer collects completed traces into a bounded ring and optionally
// exports them as NDJSON. All methods are safe for concurrent use and
// nil-receiver-safe.
type Tracer struct {
	next atomic.Uint64

	mu     sync.Mutex
	ring   []*Trace
	head   int // next write position
	count  int
	closed bool

	sinkCh   chan *Trace
	sinkDone chan struct{}
	sinkErr  error
	drops    atomic.Int64
}

// NewTracer builds a tracer. Close must be called when a Sink is
// configured, or the exporter goroutine (and its buffered writes) leak.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	tr := &Tracer{ring: make([]*Trace, cfg.Ring)}
	if cfg.Sink != nil {
		tr.sinkCh = make(chan *Trace, 4*cfg.Ring)
		tr.sinkDone = make(chan struct{})
		go tr.exportLoop(cfg.Sink)
	}
	return tr
}

// StartAt begins a trace anchored at the given stage-start time.
func (tr *Tracer) StartAt(at time.Time, sid, seq uint64, offset int64) *Trace {
	if tr == nil {
		return nil
	}
	return &Trace{
		ID:     tr.next.Add(1),
		SID:    sid,
		Seq:    seq,
		Offset: offset,
		Start:  at.UTC(),
		anchor: at,
		Spans:  make([]Span, 0, 6),
	}
}

// Finish records a completed trace into the ring and hands it to the
// sink exporter, if any. Finishing on a closed (or nil) tracer is a
// silent no-op so shutdown never races the last in-flight frames.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return
	}
	tr.ring[tr.head] = t
	tr.head = (tr.head + 1) % len(tr.ring)
	if tr.count < len(tr.ring) {
		tr.count++
	}
	// Non-blocking sink hand-off, still under mu: Close also holds mu to
	// flip closed before it closes the channel, so a send can never race
	// the close.
	if tr.sinkCh != nil {
		select {
		case tr.sinkCh <- t:
		default:
			tr.drops.Add(1)
		}
	}
	tr.mu.Unlock()
}

// Recent returns up to max completed traces, oldest first (all of them
// when max <= 0).
func (tr *Tracer) Recent(max int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := tr.count
	if max > 0 && max < n {
		n = max
	}
	out := make([]*Trace, 0, n)
	for i := tr.count - n; i < tr.count; i++ {
		out = append(out, tr.ring[(tr.head-tr.count+i+2*len(tr.ring))%len(tr.ring)])
	}
	return out
}

// WriteRecent renders up to max ring traces as NDJSON (the same lines a
// Sink receives).
func (tr *Tracer) WriteRecent(w io.Writer, max int) error {
	if tr == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, t := range tr.Recent(max) {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}

// SinkDrops reports how many traces the bounded sink hand-off dropped.
func (tr *Tracer) SinkDrops() int64 {
	if tr == nil {
		return 0
	}
	return tr.drops.Load()
}

// exportLoop is the exporter goroutine: one NDJSON line per trace on a
// buffered writer, flushed when the queue momentarily empties and again
// at close.
func (tr *Tracer) exportLoop(sink io.Writer) {
	defer close(tr.sinkDone)
	bw := bufio.NewWriter(sink)
	enc := json.NewEncoder(bw)
	var err error
	for t := range tr.sinkCh {
		if err == nil {
			err = enc.Encode(t)
		}
		if err == nil && len(tr.sinkCh) == 0 {
			err = bw.Flush()
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	tr.mu.Lock()
	tr.sinkErr = err
	tr.mu.Unlock()
}

// Close stops accepting traces, drains and stops the exporter goroutine,
// and reports the first sink write error. Idempotent; safe on nil.
func (tr *Tracer) Close() error {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	if tr.closed {
		tr.mu.Unlock()
		return tr.sinkErr
	}
	tr.closed = true
	ch := tr.sinkCh
	tr.mu.Unlock()
	if ch != nil {
		close(ch)
		<-tr.sinkDone
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.sinkErr != nil {
		return fmt.Errorf("obs: trace sink: %w", tr.sinkErr)
	}
	return nil
}
