package obs

import (
	"sync/atomic"
	"time"
)

// Timer accumulates total elapsed wall time and an event count for one
// named stage: two atomic adds per observation. The zero value is ready to
// use; all methods are safe for concurrent use.
//
// The idiomatic hot-path form evaluates time.Now() at the defer site:
//
//	defer stageTimer.Since(time.Now())
type Timer struct {
	totalNS atomic.Int64
	count   atomic.Int64
}

// Observe records one event of duration d.
func (t *Timer) Observe(d time.Duration) {
	t.totalNS.Add(int64(d))
	t.count.Add(1)
}

// Since records one event lasting from start until now.
func (t *Timer) Since(start time.Time) { t.Observe(time.Since(start)) }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.totalNS.Load()) }

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Mean returns the average observation duration (0 when empty).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(t.totalNS.Load() / n)
}
