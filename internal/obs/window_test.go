package obs

import (
	"testing"
	"time"
)

// base is an arbitrary fixed instant aligned handily off slot boundaries.
var base = time.Unix(1_700_000_000, 0)

func TestWindowBasicStats(t *testing.T) {
	var w histWindow
	for _, v := range []float64{100, 200, 300, 400} {
		w.observe(v, base)
	}
	st := w.stats(base, WindowShort)
	if st.Count != 4 {
		t.Fatalf("count %d, want 4", st.Count)
	}
	if st.Min != 100 || st.Max != 400 {
		t.Errorf("min/max %g/%g, want 100/400", st.Min, st.Max)
	}
	if st.Sum != 1000 {
		t.Errorf("sum %g, want 1000", st.Sum)
	}
	if st.P50 < 100 || st.P50 > 400 {
		t.Errorf("p50 %g outside observed range", st.P50)
	}
}

func TestWindowExpiry(t *testing.T) {
	var w histWindow
	w.observe(42, base)

	// Still visible in both windows just before the short horizon...
	at := base.Add(50 * time.Second)
	if st := w.stats(at, WindowShort); st.Count != 1 {
		t.Errorf("at +50s: short-window count %d, want 1", st.Count)
	}
	// ...out of the 60s window at +70s but inside the 120s window...
	at = base.Add(70 * time.Second)
	if st := w.stats(at, WindowShort); st.Count != 0 {
		t.Errorf("at +70s: short-window count %d, want 0", st.Count)
	}
	if st := w.stats(at, WindowLong); st.Count != 1 {
		t.Errorf("at +70s: long-window count %d, want 1", st.Count)
	}
	// ...and gone entirely past the ring's reach.
	at = base.Add(130 * time.Second)
	if st := w.stats(at, WindowLong); st.Count != 0 {
		t.Errorf("at +130s: long-window count %d, want 0", st.Count)
	}
}

// TestWindowSlotReuse: when an epoch wraps back onto a stale ring slot,
// the slot is reset rather than accumulating ghost counts.
func TestWindowSlotReuse(t *testing.T) {
	var w histWindow
	w.observe(10, base)
	// Exactly windowSlots intervals later the same ring slot comes around.
	later := base.Add(windowSlots * windowSlotDur)
	w.observe(99, later)
	st := w.stats(later, WindowLong)
	if st.Count != 1 {
		t.Fatalf("count %d after slot reuse, want 1", st.Count)
	}
	if st.Min != 99 || st.Max != 99 {
		t.Errorf("min/max %g/%g carry stale slot data", st.Min, st.Max)
	}
}

// TestWindowFullyStaleRing: with EVERY ring slot populated and then aged
// past the ring's reach, both windows must report empty stats — zero
// count and zeroed quantiles, never the stale slots' values. The
// calibration drift monitor leans on this edge: an idle session's window
// must read as "no data", not as the last traffic it ever saw.
func TestWindowFullyStaleRing(t *testing.T) {
	var w histWindow
	for i := 0; i < windowSlots; i++ {
		w.observe(float64(1000+i), base.Add(time.Duration(i)*windowSlotDur))
	}
	full := base.Add((windowSlots - 1) * windowSlotDur)
	if st := w.stats(full, WindowLong); st.Count != windowSlots {
		t.Fatalf("full ring count %d, want %d", st.Count, windowSlots)
	}
	// Far past the ring's reach every slot is stale.
	later := full.Add(10 * WindowLong)
	for _, width := range []time.Duration{WindowShort, WindowLong} {
		st := w.stats(later, width)
		if st.Count != 0 || st.Sum != 0 {
			t.Errorf("stale ring reports count/sum %d/%g over %v", st.Count, st.Sum, width)
		}
		if st.Min != 0 || st.Max != 0 || st.P50 != 0 || st.P95 != 0 || st.P99 != 0 {
			t.Errorf("stale ring leaks quantiles over %v: %+v", width, st)
		}
	}
	// And a single fresh observation fully owns the reused slot.
	w.observe(7, later)
	if st := w.stats(later, WindowShort); st.Count != 1 || st.Min != 7 || st.Max != 7 {
		t.Errorf("post-stale observation stats %+v, want the single fresh sample", st)
	}
}

func TestWindowMergesAcrossSlots(t *testing.T) {
	var w histWindow
	w.observe(1, base)
	w.observe(2, base.Add(windowSlotDur))
	w.observe(3, base.Add(2*windowSlotDur))
	st := w.stats(base.Add(2*windowSlotDur), WindowShort)
	if st.Count != 3 || st.Sum != 6 {
		t.Fatalf("count/sum %d/%g, want 3/6", st.Count, st.Sum)
	}
}

func TestWindowZeroDuration(t *testing.T) {
	var w histWindow
	w.observe(5, base)
	if st := w.stats(base, 0); st.Count != 0 {
		t.Fatalf("zero-duration window reports %d observations", st.Count)
	}
}

// TestHistogramWindowedFeed: the public path — Observe feeds the rolling
// ring, Windowed reports it.
func TestHistogramWindowedFeed(t *testing.T) {
	var h Histogram
	h.Observe(123)
	ws := h.Windowed()
	if ws.Last60s.Count != 1 || ws.Last120s.Count != 1 {
		t.Fatalf("windowed counts %d/%d, want 1/1", ws.Last60s.Count, ws.Last120s.Count)
	}
	if sum := h.Summary(); sum.Count != 1 {
		t.Fatalf("cumulative count %d, want 1", sum.Count)
	}
}
