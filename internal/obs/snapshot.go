package obs

import "time"

// TimerStats is the JSON-ready summary of one timer.
type TimerStats struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanUS  float64 `json:"mean_us"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Counters and timers are read atomically per instrument (not across
// instruments): a snapshot taken while trials are still running is
// internally consistent enough for reporting, and exact once the run has
// quiesced.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Timers     map[string]TimerStats     `json:"timers"`
	Histograms map[string]HistogramStats `json:"histograms"`
	// Windows carries each histogram's rolling last-60s/last-2min
	// summaries — the "right now" view a long-running daemon needs next
	// to the cumulative-since-boot Histograms.
	Windows map[string]WindowedStats `json:"windows,omitempty"`
	// Gauges carries each gauge's last set value (calibrated thresholds
	// and other set points). Omitted when the registry has none, so
	// manifests from gauge-free runs are unchanged.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Runtime is the Go runtime state at snapshot time.
	Runtime RuntimeStats `json:"runtime"`
	// Alerts carries the SLO rule states when an alert engine is
	// running. Snap() does not populate it — the engine is layered above
	// the registry — so daemons attach engine.Samples() before writing
	// the snapshot out (see hideseekd).
	Alerts []AlertSample `json:"alerts,omitempty"`
}

// Snap captures a snapshot of the registry.
func (r *Registry) Snap() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Timers:     make(map[string]TimerStats, len(timers)),
		Histograms: make(map[string]HistogramStats, len(hists)),
		Windows:    make(map[string]WindowedStats, len(hists)),
		Runtime:    ReadRuntime(),
	}
	for _, name := range sortedKeys(counters) {
		snap.Counters[name] = counters[name].Value()
	}
	for _, name := range sortedKeys(timers) {
		t := timers[name]
		snap.Timers[name] = TimerStats{
			Count:   t.Count(),
			TotalMS: float64(t.Total()) / float64(time.Millisecond),
			MeanUS:  float64(t.Mean()) / float64(time.Microsecond),
		}
	}
	for _, name := range sortedKeys(hists) {
		snap.Histograms[name] = hists[name].Summary()
		snap.Windows[name] = hists[name].Windowed()
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for _, name := range sortedKeys(gauges) {
			snap.Gauges[name] = gauges[name].Value()
		}
	}
	return snap
}

// Snap captures the standard registry.
func Snap() Snapshot { return std.Snap() }
