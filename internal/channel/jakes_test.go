package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestNewJakesFaderValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewJakesFader(0, 4e6, 16, rng); err == nil {
		t.Error("accepted zero doppler")
	}
	if _, err := NewJakesFader(10, 0, 16, rng); err == nil {
		t.Error("accepted zero sample rate")
	}
	if _, err := NewJakesFader(3e6, 4e6, 16, rng); err == nil {
		t.Error("accepted super-Nyquist doppler")
	}
	if _, err := NewJakesFader(10, 4e6, 2, rng); err == nil {
		t.Error("accepted 2 scatterers")
	}
	if _, err := NewJakesFader(10, 4e6, 16, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestJakesFaderUnitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Average over realizations AND time.
	var power float64
	const realizations = 40
	const samples = 2000
	for r := 0; r < realizations; r++ {
		f, err := NewJakesFader(50, 4e6, 16, rng)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < samples; n++ {
			g := f.GainAt(n * 997) // decorrelated time points
			power += real(g)*real(g) + imag(g)*imag(g)
		}
	}
	power /= realizations * samples
	if math.Abs(power-1) > 0.1 {
		t.Errorf("mean power = %g, want ≈ 1", power)
	}
}

func TestJakesFaderSlowWithinCoherenceTime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f, err := NewJakesFader(15, 4e6, 16, rng) // pedestrian doppler
	if err != nil {
		t.Fatal(err)
	}
	// Over one ZigBee frame (~0.4 ms ≪ coherence time ~28 ms) the gain
	// must be nearly constant.
	if ct := f.CoherenceTimeUs(); math.Abs(ct-28200) > 300 {
		t.Errorf("coherence time = %g µs, want ≈ 28200", ct)
	}
	g0 := f.GainAt(0)
	gEnd := f.GainAt(1600)
	if cmplx.Abs(g0-gEnd) > 0.05*cmplx.Abs(g0)+0.01 {
		t.Errorf("gain drifted %g over one frame", cmplx.Abs(g0-gEnd))
	}
}

func TestJakesFaderVariesAcrossCoherenceTime(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f, err := NewJakesFader(100, 4e6, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Across many coherence times the gain must take materially different
	// values.
	var minMag, maxMag = math.Inf(1), 0.0
	for i := 0; i < 100; i++ {
		m := cmplx.Abs(f.GainAt(i * 400000)) // 0.1 s apart
		minMag = math.Min(minMag, m)
		maxMag = math.Max(maxMag, m)
	}
	if maxMag/math.Max(minMag, 1e-9) < 2 {
		t.Errorf("gain hardly varies: [%g, %g]", minMag, maxMag)
	}
}

func TestJakesFaderApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f, err := NewJakesFader(20, 4e6, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(100)
	y := f.Apply(x)
	if len(y) != len(x) {
		t.Fatalf("length %d", len(y))
	}
	for i := range x {
		want := x[i] * f.GainAt(i)
		if cmplx.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}
