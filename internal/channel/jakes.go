package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// JakesFader generates a time-varying flat Rayleigh fading process by the
// sum-of-sinusoids method (Jakes' model): N scatterers at uniformly
// distributed angles produce a complex gain whose autocorrelation follows
// J₀(2π·f_D·τ). It upgrades the block-fading models to sample-accurate
// temporal variation — the "human activities such as walking" of the
// paper's Sec. VII-D at pedestrian Doppler spreads (f_D ≈ 10–20 Hz at
// 2.4 GHz walking speed).
type JakesFader struct {
	dopplerHz  float64
	sampleRate float64
	freqs      []float64 // per-scatterer Doppler shifts (rad/sample)
	phases     []float64 // initial phases
	scale      float64
}

// NewJakesFader draws a fading process realization. numScatterers ≥ 8
// gives a good Rayleigh approximation.
func NewJakesFader(dopplerHz, sampleRate float64, numScatterers int, rng *rand.Rand) (*JakesFader, error) {
	if dopplerHz <= 0 {
		return nil, fmt.Errorf("channel: doppler %v must be positive", dopplerHz)
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("channel: sample rate %v must be positive", sampleRate)
	}
	if dopplerHz >= sampleRate/2 {
		return nil, fmt.Errorf("channel: doppler %v exceeds Nyquist", dopplerHz)
	}
	if numScatterers < 4 {
		return nil, fmt.Errorf("channel: need ≥ 4 scatterers, got %d", numScatterers)
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	f := &JakesFader{
		dopplerHz:  dopplerHz,
		sampleRate: sampleRate,
		freqs:      make([]float64, numScatterers),
		phases:     make([]float64, numScatterers),
		scale:      1 / math.Sqrt(float64(numScatterers)),
	}
	for i := range f.freqs {
		// Arrival angle uniform in [0, 2π): Doppler shift f_D·cos(θ).
		theta := rng.Float64() * 2 * math.Pi
		f.freqs[i] = 2 * math.Pi * dopplerHz * math.Cos(theta) / sampleRate
		f.phases[i] = rng.Float64() * 2 * math.Pi
	}
	return f, nil
}

// GainAt evaluates the complex channel gain at sample index n.
func (f *JakesFader) GainAt(n int) complex128 {
	var re, im float64
	t := float64(n)
	for i := range f.freqs {
		arg := f.freqs[i]*t + f.phases[i]
		// Quadrature components from independent phase offsets. Each sum
		// of numScatterers sinusoids has variance N/2, so the 1/√N scale
		// yields a unit-mean-power complex Gaussian process.
		re += math.Cos(arg)
		im += math.Sin(arg + f.phases[(i+1)%len(f.phases)])
	}
	return complex(re*f.scale, im*f.scale)
}

// Apply multiplies the waveform by the time-varying gain.
func (f *JakesFader) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * f.GainAt(i)
	}
	return out
}

// CoherenceTimeUs returns the approximate channel coherence time
// (0.423/f_D, the standard rule of thumb) in microseconds.
func (f *JakesFader) CoherenceTimeUs() float64 {
	return 0.423 / f.dopplerHz * 1e6
}
