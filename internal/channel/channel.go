// Package channel provides the propagation models that substitute for the
// paper's over-the-air testbed: AWGN, carrier frequency/phase offset,
// log-distance path loss with shadowing, Rayleigh block fading and
// multipath, and RSSI measurement. Every stochastic model takes an explicit
// *rand.Rand so experiments are reproducible.
package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"hideseek/internal/dsp"
)

// Channel transforms a transmitted baseband waveform into a received one.
// Implementations may be chained with Chain.
type Channel interface {
	// Apply returns the received waveform. The input is never mutated.
	Apply(x []complex128) []complex128
}

// AWGN adds circularly-symmetric complex Gaussian noise at a fixed SNR
// relative to an assumed unit-power signal (the paper normalizes transmit
// power and defines SNR = 1/σ², Sec. VII-B).
type AWGN struct {
	rng    *rand.Rand
	stddev float64 // per real dimension
}

// NewAWGN builds an AWGN channel for the given SNR in dB, assuming the
// input waveform is normalized to unit average power.
func NewAWGN(snrDB float64, rng *rand.Rand) (*AWGN, error) {
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	noisePower := dsp.FromDB(-snrDB)
	return &AWGN{rng: rng, stddev: math.Sqrt(noisePower / 2)}, nil
}

// Apply adds noise to a copy of x.
func (c *AWGN) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v + complex(c.rng.NormFloat64()*c.stddev, c.rng.NormFloat64()*c.stddev)
	}
	return out
}

// NoisePower returns the total complex noise power 2σ².
func (c *AWGN) NoisePower() float64 { return 2 * c.stddev * c.stddev }

// CFO models a carrier frequency offset plus a constant phase offset —
// the "real scenario" impairment that pushes the defense from C40 to |C40|
// (paper Sec. VI-C).
type CFO struct {
	radPerSample float64
	phase        float64
}

// NewCFO builds an offset channel. freqOffsetHz is the residual carrier
// offset, sampleRate the baseband clock, phaseRad a constant rotation.
func NewCFO(freqOffsetHz, sampleRate, phaseRad float64) (*CFO, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("channel: sample rate %v must be positive", sampleRate)
	}
	if math.Abs(freqOffsetHz) >= sampleRate/2 {
		return nil, fmt.Errorf("channel: frequency offset %v exceeds Nyquist of %v", freqOffsetHz, sampleRate)
	}
	return &CFO{radPerSample: 2 * math.Pi * freqOffsetHz / sampleRate, phase: phaseRad}, nil
}

// Apply rotates each sample by the accumulated offset.
func (c *CFO) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = v * cmplx.Rect(1, c.phase+c.radPerSample*float64(i))
	}
	return out
}

// Gain applies a flat complex gain (used for fading realizations and path
// loss amplitude scaling).
type Gain struct {
	g complex128
}

// NewGain wraps a fixed complex gain.
func NewGain(g complex128) *Gain { return &Gain{g: g} }

// Apply scales a copy of x.
func (c *Gain) Apply(x []complex128) []complex128 { return dsp.Scale(x, c.g) }

// Chain composes channels left to right.
type Chain struct {
	stages []Channel
}

// NewChain builds a composite channel; nil stages are rejected.
func NewChain(stages ...Channel) (*Chain, error) {
	for i, s := range stages {
		if s == nil {
			return nil, fmt.Errorf("channel: stage %d is nil", i)
		}
	}
	return &Chain{stages: stages}, nil
}

// Apply runs every stage in order.
func (c *Chain) Apply(x []complex128) []complex128 {
	out := x
	for _, s := range c.stages {
		out = s.Apply(out)
	}
	if len(c.stages) == 0 {
		out = append([]complex128(nil), x...)
	}
	return out
}

// RSSI returns the received signal strength in dB relative to unit power —
// the quantity the CC26x2R1 reports after antenna loss (paper Table V
// discussion).
func RSSI(x []complex128) float64 {
	return dsp.DB(dsp.Power(x))
}
