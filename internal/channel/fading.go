package channel

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// RayleighGain draws one flat Rayleigh block-fading coefficient with unit
// mean power: h ~ CN(0, 1).
func RayleighGain(rng *rand.Rand) complex128 {
	s := math.Sqrt(0.5)
	return complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
}

// RicianGain draws a Rician coefficient with the given K-factor (ratio of
// line-of-sight to scattered power) and unit mean power. K→∞ degenerates
// to a pure LoS phasor; K=0 is Rayleigh.
func RicianGain(k float64, rng *rand.Rand) complex128 {
	if k < 0 {
		k = 0
	}
	los := cmplx.Rect(math.Sqrt(k/(k+1)), rng.Float64()*2*math.Pi)
	s := math.Sqrt(0.5 / (k + 1))
	return los + complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
}

// Multipath is a tapped-delay-line channel with an exponential power delay
// profile — the static frequency-selective part of the paper's "real
// environment".
type Multipath struct {
	taps []complex128
}

// NewMultipath draws a random multipath realization. numTaps is the channel
// length in samples; decay is the per-tap power decay factor in (0, 1].
// The realization is normalized to unit average power so path loss remains
// a separate concern.
func NewMultipath(numTaps int, decay float64, rng *rand.Rand) (*Multipath, error) {
	if numTaps < 1 {
		return nil, fmt.Errorf("channel: numTaps %d < 1", numTaps)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("channel: decay %v outside (0, 1]", decay)
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	taps := make([]complex128, numTaps)
	var power float64
	weight := 1.0
	for i := range taps {
		taps[i] = RayleighGain(rng) * complex(math.Sqrt(weight), 0)
		power += weight
		weight *= decay
	}
	norm := complex(1/math.Sqrt(totalPower(taps)), 0)
	for i := range taps {
		taps[i] *= norm
	}
	return &Multipath{taps: taps}, nil
}

// NewRicianMultipath draws a multipath realization whose first tap is
// Rician with the given K-factor — a line-of-sight-dominated channel
// matching the short indoor links of the paper's testbed (1–8 m with the
// devices in view of each other). Later taps are Rayleigh with an
// exponential power decay relative to the scattered component. The
// realization is normalized to unit power.
func NewRicianMultipath(numTaps int, decay, k float64, rng *rand.Rand) (*Multipath, error) {
	if numTaps < 1 {
		return nil, fmt.Errorf("channel: numTaps %d < 1", numTaps)
	}
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("channel: decay %v outside (0, 1]", decay)
	}
	if k < 0 {
		return nil, fmt.Errorf("channel: negative K-factor %v", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	taps := make([]complex128, numTaps)
	taps[0] = RicianGain(k, rng)
	// Scattered taps carry 1/(K+1) of the LoS power, decaying further.
	weight := 1.0 / (k + 1)
	for i := 1; i < numTaps; i++ {
		weight *= decay
		taps[i] = RayleighGain(rng) * complex(math.Sqrt(weight), 0)
	}
	norm := complex(1/math.Sqrt(totalPower(taps)), 0)
	for i := range taps {
		taps[i] *= norm
	}
	return &Multipath{taps: taps}, nil
}

func totalPower(taps []complex128) float64 {
	var p float64
	for _, t := range taps {
		p += real(t)*real(t) + imag(t)*imag(t)
	}
	if p == 0 {
		return 1
	}
	return p
}

// Taps returns a copy of the impulse response.
func (c *Multipath) Taps() []complex128 {
	out := make([]complex128, len(c.taps))
	copy(out, c.taps)
	return out
}

// Apply convolves x with the impulse response, truncated to len(x) so
// timing is preserved.
func (c *Multipath) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		if v == 0 {
			continue
		}
		for j, t := range c.taps {
			if i+j >= len(out) {
				break
			}
			out[i+j] += v * t
		}
	}
	return out
}

// DopplerPhaseNoise models slow random phase drift from motion in the
// environment ("human activities such as walking", Sec. VII-D): a Wiener
// phase process with the given per-sample standard deviation.
type DopplerPhaseNoise struct {
	rng   *rand.Rand
	sigma float64
}

// NewDopplerPhaseNoise builds the phase-drift channel. sigmaRadPerSample of
// ~1e-4 at 4 MS/s corresponds to slow pedestrian-scale variation.
func NewDopplerPhaseNoise(sigmaRadPerSample float64, rng *rand.Rand) (*DopplerPhaseNoise, error) {
	if sigmaRadPerSample < 0 {
		return nil, fmt.Errorf("channel: negative sigma %v", sigmaRadPerSample)
	}
	if rng == nil {
		return nil, fmt.Errorf("channel: nil rng")
	}
	return &DopplerPhaseNoise{rng: rng, sigma: sigmaRadPerSample}, nil
}

// Apply integrates a random phase walk over the waveform.
func (c *DopplerPhaseNoise) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	phase := 0.0
	for i, v := range x {
		phase += c.rng.NormFloat64() * c.sigma
		out[i] = v * cmplx.Rect(1, phase)
	}
	return out
}
