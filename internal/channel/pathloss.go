package channel

import (
	"fmt"
	"math"
	"math/rand"
)

// PathLossModel is the log-distance model with log-normal shadowing:
//
//	PL(d) = PL(d0) + 10·n·log10(d/d0) + X_σ
//
// It converts transmitter-receiver distance into an average received power,
// standing in for the 1–8 m indoor link of the paper's Fig. 14 / Table V.
type PathLossModel struct {
	// RefLossDB is PL(d0), the path loss at the reference distance.
	RefLossDB float64
	// RefDistance d0 in meters.
	RefDistance float64
	// Exponent n (2 = free space, 2.5–4 indoor).
	Exponent float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation.
	ShadowSigmaDB float64
}

// DefaultIndoorPathLoss returns parameters tuned to the paper's testbed
// scale: a 2.4 GHz indoor lab where the attack decodes reliably out to
// ~5–6 m on the hard-threshold receiver and farther on the commodity one.
func DefaultIndoorPathLoss() PathLossModel {
	return PathLossModel{
		RefLossDB:     40, // free-space loss at 1 m for 2.4 GHz ≈ 40 dB
		RefDistance:   1,
		Exponent:      3.0,
		ShadowSigmaDB: 2.0,
	}
}

// LossDB returns the mean path loss at distance d (no shadowing).
func (m PathLossModel) LossDB(d float64) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("channel: distance %v must be positive", d)
	}
	if m.RefDistance <= 0 {
		return 0, fmt.Errorf("channel: reference distance %v must be positive", m.RefDistance)
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(d/m.RefDistance), nil
}

// SampleLossDB returns the path loss at d including a shadowing draw.
func (m PathLossModel) SampleLossDB(d float64, rng *rand.Rand) (float64, error) {
	mean, err := m.LossDB(d)
	if err != nil {
		return 0, err
	}
	if rng == nil {
		return 0, fmt.Errorf("channel: nil rng")
	}
	return mean + rng.NormFloat64()*m.ShadowSigmaDB, nil
}

// SNRAtDistance converts a transmit power budget into the receive SNR at
// distance d: txPowerDB − PL(d) − noiseFloorDB, with shadowing.
func (m PathLossModel) SNRAtDistance(txPowerDB, noiseFloorDB, d float64, rng *rand.Rand) (float64, error) {
	loss, err := m.SampleLossDB(d, rng)
	if err != nil {
		return 0, err
	}
	return txPowerDB - loss - noiseFloorDB, nil
}
