package channel

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestNewIQImbalanceValidation(t *testing.T) {
	if _, err := NewIQImbalance(1.5, 0); err == nil {
		t.Error("accepted gain error ≥ 1")
	}
	if _, err := NewIQImbalance(0, 2); err == nil {
		t.Error("accepted phase error ≥ π/2")
	}
}

func TestIQImbalanceIdentityWhenPerfect(t *testing.T) {
	c, err := NewIQImbalance(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(64)
	y := c.Apply(x)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("perfect front end altered sample %d", i)
		}
	}
	if !math.IsInf(c.ImageRejectionRatioDB(), 1) {
		t.Error("perfect front end should have infinite IRR")
	}
}

func TestIQImbalanceCreatesImage(t *testing.T) {
	// A positive-frequency tone through an imbalanced front end leaks a
	// negative-frequency image at the IRR level.
	c, err := NewIQImbalance(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	n := 256
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*float64(8*i)/float64(n)) // bin +8
	}
	y := c.Apply(x)
	// Project onto bins +8 and −8.
	var pos, neg complex128
	for i, v := range y {
		pos += v * cmplx.Rect(1, -2*math.Pi*float64(8*i)/float64(n))
		neg += v * cmplx.Rect(1, 2*math.Pi*float64(8*i)/float64(n))
	}
	irr := 20 * math.Log10(cmplx.Abs(pos)/cmplx.Abs(neg))
	want := c.ImageRejectionRatioDB()
	if math.Abs(irr-want) > 1 {
		t.Errorf("measured IRR %g dB, model says %g dB", irr, want)
	}
	// 5% gain + 0.05 rad phase ⇒ IRR in the realistic 25–35 dB band.
	if want < 20 || want > 40 {
		t.Errorf("IRR %g dB outside the commodity range", want)
	}
}

func TestIQImbalancePreservesApproximatePower(t *testing.T) {
	c, err := NewIQImbalance(0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(1000)
	y := c.Apply(x)
	var px, py float64
	for i := range x {
		px += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		py += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	if math.Abs(py/px-1) > 0.05 {
		t.Errorf("power ratio %g", py/px)
	}
}
