package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"hideseek/internal/dsp"
)

func unitTone(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*0.05*float64(i))
	}
	return x
}

func TestAWGNValidation(t *testing.T) {
	if _, err := NewAWGN(10, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestAWGNNoisePowerMatchesSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, snr := range []float64{0, 7, 17} {
		ch, err := NewAWGN(snr, rng)
		if err != nil {
			t.Fatal(err)
		}
		wantNoise := dsp.FromDB(-snr)
		if math.Abs(ch.NoisePower()-wantNoise)/wantNoise > 1e-12 {
			t.Errorf("SNR %g: NoisePower = %g, want %g", snr, ch.NoisePower(), wantNoise)
		}
		x := unitTone(50000)
		y := ch.Apply(x)
		diff, err := dsp.Sub(y, x)
		if err != nil {
			t.Fatal(err)
		}
		measured := dsp.Power(diff)
		if math.Abs(measured-wantNoise)/wantNoise > 0.05 {
			t.Errorf("SNR %g: measured noise power %g, want %g", snr, measured, wantNoise)
		}
	}
}

func TestAWGNDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	ch, err := NewAWGN(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(16)
	orig := append([]complex128(nil), x...)
	_ = ch.Apply(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("input mutated")
		}
	}
}

func TestCFOValidationAndRotation(t *testing.T) {
	if _, err := NewCFO(1e6, 0, 0); err == nil {
		t.Error("accepted zero sample rate")
	}
	if _, err := NewCFO(3e6, 4e6, 0); err == nil {
		t.Error("accepted super-Nyquist offset")
	}
	ch, err := NewCFO(100e3, 4e6, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 10)
	for i := range x {
		x[i] = 1
	}
	y := ch.Apply(x)
	for i := range y {
		want := cmplx.Rect(1, math.Pi/4+2*math.Pi*100e3/4e6*float64(i))
		if cmplx.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("sample %d: %v, want %v", i, y[i], want)
		}
	}
}

func TestCFOPreservesPower(t *testing.T) {
	ch, err := NewCFO(250e3, 4e6, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(1000)
	y := ch.Apply(x)
	if math.Abs(dsp.Power(y)-dsp.Power(x)) > 1e-12 {
		t.Error("CFO changed signal power")
	}
}

func TestGainAndChain(t *testing.T) {
	g := NewGain(2i)
	x := []complex128{1, 1i}
	y := g.Apply(x)
	if y[0] != 2i || y[1] != -2 {
		t.Errorf("Gain = %v", y)
	}

	if _, err := NewChain(g, nil); err == nil {
		t.Error("accepted nil stage")
	}
	chain, err := NewChain(NewGain(2), NewGain(3))
	if err != nil {
		t.Fatal(err)
	}
	z := chain.Apply(x)
	if z[0] != 6 || z[1] != 6i {
		t.Errorf("Chain = %v", z)
	}

	empty, err := NewChain()
	if err != nil {
		t.Fatal(err)
	}
	w := empty.Apply(x)
	if w[0] != x[0] || w[1] != x[1] {
		t.Error("empty chain should copy input")
	}
	w[0] = 99
	if x[0] == 99 {
		t.Error("empty chain aliased input")
	}
}

func TestRSSI(t *testing.T) {
	x := unitTone(100)
	if got := RSSI(x); math.Abs(got) > 1e-9 {
		t.Errorf("unit power RSSI = %g dB, want 0", got)
	}
	half := dsp.Scale(x, complex(math.Sqrt(0.5), 0))
	if got := RSSI(half); math.Abs(got+3.0103) > 0.01 {
		t.Errorf("half power RSSI = %g dB, want ≈ −3", got)
	}
}

func TestPathLossModel(t *testing.T) {
	m := DefaultIndoorPathLoss()
	if _, err := m.LossDB(0); err == nil {
		t.Error("accepted zero distance")
	}
	bad := m
	bad.RefDistance = 0
	if _, err := bad.LossDB(1); err == nil {
		t.Error("accepted zero reference distance")
	}
	l1, err := m.LossDB(1)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != m.RefLossDB {
		t.Errorf("loss at d0 = %g, want %g", l1, m.RefLossDB)
	}
	l2, err := m.LossDB(2)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 10 * m.Exponent * math.Log10(2)
	if math.Abs(l2-l1-wantDelta) > 1e-12 {
		t.Errorf("doubling distance added %g dB, want %g", l2-l1, wantDelta)
	}
}

func TestPathLossShadowingStatistics(t *testing.T) {
	m := DefaultIndoorPathLoss()
	rng := rand.New(rand.NewSource(93))
	const n = 20000
	var sum, sumSq float64
	mean, err := m.LossDB(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := m.SampleLossDB(3, rng)
		if err != nil {
			t.Fatal(err)
		}
		sum += v - mean
		sumSq += (v - mean) * (v - mean)
	}
	avg := sum / n
	std := math.Sqrt(sumSq / n)
	if math.Abs(avg) > 0.1 {
		t.Errorf("shadowing mean = %g, want ≈ 0", avg)
	}
	if math.Abs(std-m.ShadowSigmaDB) > 0.1 {
		t.Errorf("shadowing std = %g, want %g", std, m.ShadowSigmaDB)
	}
	if _, err := m.SampleLossDB(3, nil); err == nil {
		t.Error("accepted nil rng")
	}
}

func TestSNRAtDistanceMonotone(t *testing.T) {
	m := DefaultIndoorPathLoss()
	m.ShadowSigmaDB = 0
	rng := rand.New(rand.NewSource(94))
	prev := math.Inf(1)
	for _, d := range []float64{1, 2, 4, 8} {
		snr, err := m.SNRAtDistance(60, -20, d, rng)
		if err != nil {
			t.Fatal(err)
		}
		if snr >= prev {
			t.Errorf("SNR at %g m = %g not decreasing (prev %g)", d, snr, prev)
		}
		prev = snr
	}
}

func TestRayleighRicianStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	const n = 50000
	var p float64
	for i := 0; i < n; i++ {
		h := RayleighGain(rng)
		p += real(h)*real(h) + imag(h)*imag(h)
	}
	p /= n
	if math.Abs(p-1) > 0.03 {
		t.Errorf("Rayleigh mean power = %g, want 1", p)
	}

	var pr float64
	for i := 0; i < n; i++ {
		h := RicianGain(5, rng)
		pr += real(h)*real(h) + imag(h)*imag(h)
	}
	pr /= n
	if math.Abs(pr-1) > 0.03 {
		t.Errorf("Rician mean power = %g, want 1", pr)
	}

	// High-K Rician magnitude concentrates near 1.
	var minMag, maxMag = math.Inf(1), 0.0
	for i := 0; i < 1000; i++ {
		mag := cmplx.Abs(RicianGain(1000, rng))
		minMag = math.Min(minMag, mag)
		maxMag = math.Max(maxMag, mag)
	}
	if minMag < 0.85 || maxMag > 1.15 {
		t.Errorf("K=1000 Rician magnitudes spread [%g, %g]", minMag, maxMag)
	}
	// Negative K treated as Rayleigh (no panic, unit power).
	_ = RicianGain(-2, rng)
}

func TestMultipathValidationAndNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	if _, err := NewMultipath(0, 0.5, rng); err == nil {
		t.Error("accepted 0 taps")
	}
	if _, err := NewMultipath(3, 0, rng); err == nil {
		t.Error("accepted decay 0")
	}
	if _, err := NewMultipath(3, 1.5, rng); err == nil {
		t.Error("accepted decay > 1")
	}
	if _, err := NewMultipath(3, 0.5, nil); err == nil {
		t.Error("accepted nil rng")
	}
	mp, err := NewMultipath(4, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	var p float64
	for _, tap := range mp.Taps() {
		p += real(tap)*real(tap) + imag(tap)*imag(tap)
	}
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("tap power = %g, want 1", p)
	}
}

func TestMultipathSingleTapIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	mp, err := NewMultipath(1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(64)
	y := mp.Apply(x)
	h := mp.Taps()[0]
	for i := range x {
		if cmplx.Abs(y[i]-x[i]*h) > 1e-12 {
			t.Fatalf("sample %d not flat-scaled", i)
		}
	}
}

func TestMultipathPreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	mp, err := NewMultipath(6, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(100)
	y := mp.Apply(x)
	if len(y) != len(x) {
		t.Errorf("output length %d != input %d", len(y), len(x))
	}
}

func TestDopplerPhaseNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	if _, err := NewDopplerPhaseNoise(-1, rng); err == nil {
		t.Error("accepted negative sigma")
	}
	if _, err := NewDopplerPhaseNoise(1e-4, nil); err == nil {
		t.Error("accepted nil rng")
	}
	ch, err := NewDopplerPhaseNoise(1e-3, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(5000)
	y := ch.Apply(x)
	// Pure phase rotation: power preserved sample by sample.
	for i := range x {
		if math.Abs(cmplx.Abs(y[i])-cmplx.Abs(x[i])) > 1e-12 {
			t.Fatalf("sample %d magnitude changed", i)
		}
	}
	// Phase must actually drift over a long window.
	drift := cmplx.Abs(y[len(y)-1]/x[len(x)-1] - 1)
	if drift < 1e-3 {
		t.Errorf("no visible phase drift (%g)", drift)
	}
}
