package channel

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IQImbalance models receiver front-end gain and phase mismatch between the
// I and Q mixer arms:
//
//	y = μ·x + ν·conj(x),  μ = cos(φ/2) + j·ε/2·sin(φ/2)
//	                       ν = ε/2·cos(φ/2) − j·sin(φ/2)
//
// (first-order model for gain error ε and phase error φ). The conjugate
// term creates an image that directly perturbs fourth-order statistics —
// a receiver with poor IQ calibration biases the defense's Ĉ40/Ĉ42
// estimates, which the false-alarm tests quantify.
type IQImbalance struct {
	mu, nu complex128
}

// NewIQImbalance builds the impairment for a relative gain error (e.g.
// 0.05 = 5 %) and a phase error in radians.
func NewIQImbalance(gainError, phaseErrorRad float64) (*IQImbalance, error) {
	if math.Abs(gainError) >= 1 {
		return nil, fmt.Errorf("channel: gain error %v out of range (−1, 1)", gainError)
	}
	if math.Abs(phaseErrorRad) >= math.Pi/2 {
		return nil, fmt.Errorf("channel: phase error %v exceeds ±π/2", phaseErrorRad)
	}
	half := phaseErrorRad / 2
	return &IQImbalance{
		mu: complex(math.Cos(half), gainError/2*math.Sin(half)),
		nu: complex(gainError/2*math.Cos(half), -math.Sin(half)),
	}, nil
}

// Apply imposes the imbalance on a copy of x.
func (c *IQImbalance) Apply(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = c.mu*v + c.nu*cmplx.Conj(v)
	}
	return out
}

// ImageRejectionRatioDB reports the classic IRR = |μ|²/|ν|² in dB —
// commodity radios sit around 25–40 dB.
func (c *IQImbalance) ImageRejectionRatioDB() float64 {
	nu2 := real(c.nu)*real(c.nu) + imag(c.nu)*imag(c.nu)
	if nu2 == 0 {
		return math.Inf(1)
	}
	mu2 := real(c.mu)*real(c.mu) + imag(c.mu)*imag(c.mu)
	return 10 * math.Log10(mu2/nu2)
}
