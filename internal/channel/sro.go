package channel

import (
	"fmt"
	"math"
)

// SampleRateOffset models the clock skew between transmitter and receiver
// oscillators: the receiver samples the continuous waveform at
// (1 + ppm·10⁻⁶) times the nominal rate, implemented by cubic-free linear
// interpolation over a drifting time base. Over a ZigBee frame (~1800
// samples) a ±40 ppm crystal slews timing by ~0.07 samples — the
// disturbance the clock-recovery loop exists to track.
type SampleRateOffset struct {
	ratio float64
}

// NewSampleRateOffset builds the skew channel; ppm is the offset in parts
// per million (positive = receiver clock fast, waveform appears slower).
func NewSampleRateOffset(ppm float64) (*SampleRateOffset, error) {
	if math.Abs(ppm) >= 1e5 {
		return nil, fmt.Errorf("channel: |ppm| = %v too large (≥ 10%%)", math.Abs(ppm))
	}
	return &SampleRateOffset{ratio: 1 + ppm*1e-6}, nil
}

// Apply resamples x at the skewed rate. Output length shrinks or grows by
// the skew factor; interior samples are linearly interpolated.
func (c *SampleRateOffset) Apply(x []complex128) []complex128 {
	if len(x) < 2 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	outLen := int(float64(len(x)-1)/c.ratio) + 1
	out := make([]complex128, 0, outLen)
	for i := 0; ; i++ {
		t := float64(i) * c.ratio
		idx := int(t)
		if idx >= len(x)-1 {
			break
		}
		frac := complex(t-float64(idx), 0)
		out = append(out, x[idx]+(x[idx+1]-x[idx])*frac)
	}
	return out
}
