package channel

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestNewSampleRateOffsetValidation(t *testing.T) {
	if _, err := NewSampleRateOffset(2e5); err == nil {
		t.Error("accepted 20% skew")
	}
}

func TestSampleRateOffsetZeroPPMIsIdentity(t *testing.T) {
	c, err := NewSampleRateOffset(0)
	if err != nil {
		t.Fatal(err)
	}
	x := unitTone(100)
	y := c.Apply(x)
	if len(y) != len(x)-1 { // last sample has no right neighbor
		t.Fatalf("length %d", len(y))
	}
	for i := range y {
		if cmplx.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("sample %d changed", i)
		}
	}
}

func TestSampleRateOffsetSlewsTiming(t *testing.T) {
	c, err := NewSampleRateOffset(1000) // 0.1% fast clock
	if err != nil {
		t.Fatal(err)
	}
	n := 10000
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i), 0) // ramp: interpolation is exact
	}
	y := c.Apply(x)
	// Output sample i sits at input time i·1.001.
	for _, i := range []int{100, 5000, len(y) - 1} {
		want := float64(i) * 1.001
		if math.Abs(real(y[i])-want) > 1e-9 {
			t.Fatalf("sample %d = %g, want %g", i, real(y[i]), want)
		}
	}
	// Output is shorter (the fast clock exhausts the waveform sooner).
	if len(y) >= n {
		t.Errorf("output length %d not shorter than input %d", len(y), n)
	}
}

func TestSampleRateOffsetTinyInput(t *testing.T) {
	c, err := NewSampleRateOffset(40)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Apply(nil); len(got) != 0 {
		t.Error("nil input should give empty output")
	}
	one := c.Apply([]complex128{5})
	if len(one) != 1 || one[0] != 5 {
		t.Errorf("single sample: %v", one)
	}
}
