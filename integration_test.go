package hideseek

// The capstone integration test: the complete kill chain of the paper,
// end to end, with every subsystem in the loop — gateway TX, attacker
// eavesdropping, CSMA/CA channel access, carrier planning, waveform
// emulation, the victim's three receiver models, the MAC replay guard,
// and both the per-frame and streaming defenses.

import (
	"math/rand"
	"testing"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/zigbee"
)

func TestFullKillChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2019)) // the paper's year, why not

	// ── The deployment: a gateway controls a lock on ZigBee channel 17.
	gateway := zigbee.NewTransmitter()
	lockCmd := &zigbee.MACFrame{
		Type: zigbee.FrameData, Seq: 11, PANID: 0x1234,
		Dst: 0x10CC, Src: 0x0001, Payload: []byte("unlock"),
	}
	overTheAir, err := gateway.TransmitFrame(lockCmd)
	if err != nil {
		t.Fatal(err)
	}

	// ── Step 1 (Sec. IV-A): the attacker eavesdrops through a realistic
	// indoor channel.
	mp, err := channel.NewRicianMultipath(2, 0.25, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	awgn, err := channel.NewAWGN(20, rng)
	if err != nil {
		t.Fatal(err)
	}
	eavesdropChannel, err := channel.NewChain(mp, awgn)
	if err != nil {
		t.Fatal(err)
	}
	captured := eavesdropChannel.Apply(overTheAir)

	// The attacker decodes the capture to learn the command format, then
	// forges a FRESH frame (defeating replay detection).
	attackerRx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := attackerRx.Receive(captured)
	if err != nil {
		t.Fatalf("attacker failed to decode the capture: %v", err)
	}
	overheard, err := zigbee.DecodeMACFrame(rec.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if string(overheard.Payload) != "unlock" {
		t.Fatalf("attacker overheard %q", overheard.Payload)
	}

	// ── Step 2 (Sec. V): plan the carrier and emulate a forged frame.
	plan, err := emulation.PlanCarrier(2440e6, 17)
	if err != nil {
		t.Fatal(err)
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	forged := &zigbee.MACFrame{
		Type: zigbee.FrameData, Seq: overheard.Seq + 40, PANID: overheard.PANID,
		Dst: overheard.Dst, Src: overheard.Src, Payload: overheard.Payload,
	}
	attack, err := emulation.ForgeFrame(em, forged)
	if err != nil {
		t.Fatal(err)
	}

	// ── Step 2.5 (Sec. IV-B): CSMA/CA against the gateway's light traffic.
	access, err := zigbee.PerformCSMA(zigbee.CSMAConfig{},
		zigbee.PeriodicTraffic{PeriodUs: 10000, BusyUs: 500}, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !access.Success {
		t.Fatal("attacker never won channel access against a 5% duty cycle")
	}

	// ── Step 3: radiate at 2440 MHz; the victim front end mixes down.
	onAir := emulation.MixForPlan(attack.Emulated20M, plan)
	strikeChannel, err := channel.NewAWGN(15, rng)
	if err != nil {
		t.Fatal(err)
	}
	atVictimRF, err := emulation.ReceiveForPlan(strikeChannel.Apply(onAir), plan)
	if err != nil {
		t.Fatal(err)
	}

	// ── The victim: every receiver model decodes the forged command.
	for _, mode := range []struct {
		name string
		mode zigbee.DespreadMode
	}{
		{name: "USRP/FM", mode: zigbee.FMDiscriminator},
		{name: "commodity/soft", mode: zigbee.SoftCorrelation},
		{name: "hard-threshold", mode: zigbee.HardThreshold},
	} {
		rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{Mode: mode.mode, SyncThreshold: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		vrec, err := rx.Receive(atVictimRF)
		if err != nil {
			t.Fatalf("%s receiver rejected the attack: %v", mode.name, err)
		}
		frame, err := zigbee.DecodeMACFrame(vrec.PSDU)
		if err != nil {
			t.Fatalf("%s: MAC decode: %v", mode.name, err)
		}
		if string(frame.Payload) != "unlock" {
			t.Fatalf("%s decoded %q", mode.name, frame.Payload)
		}
	}

	// ── The MAC replay guard does NOT catch the forged frame.
	victimRx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	guard, err := zigbee.NewReplayGuard(16)
	if err != nil {
		t.Fatal(err)
	}
	legitRec, err := victimRx.Receive(eavesdropChannel.Apply(overTheAir))
	if err != nil {
		t.Fatal(err)
	}
	legitFrame, err := zigbee.DecodeMACFrame(legitRec.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if replay, _ := guard.Check(legitFrame); replay {
		t.Fatal("legit frame flagged")
	}
	vrec, err := victimRx.Receive(atVictimRF)
	if err != nil {
		t.Fatal(err)
	}
	forgedDecoded, err := zigbee.DecodeMACFrame(vrec.PSDU)
	if err != nil {
		t.Fatal(err)
	}
	if replay, _ := guard.Check(forgedDecoded); replay {
		t.Fatal("forged frame (fresh sequence) caught by replay guard — should not happen")
	}

	// ── The PHY defense DOES: per-frame verdict and streaming alarm.
	detector, err := emulation.NewDetector(emulation.DefenseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	verdict, err := detector.AnalyzeReception(vrec)
	if err != nil {
		t.Fatal(err)
	}
	if !verdict.Attack {
		t.Fatalf("defense missed the attack: D² = %g", verdict.DistanceSquared)
	}
	legitVerdict, err := detector.AnalyzeReception(legitRec)
	if err != nil {
		t.Fatal(err)
	}
	if legitVerdict.Attack {
		t.Fatalf("defense flagged the legitimate frame: D² = %g", legitVerdict.DistanceSquared)
	}

	monitor, err := emulation.NewStreamDetector(emulation.DefenseConfig{}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, alarm, err := monitor.Observe(legitRec); err != nil || alarm {
		t.Fatalf("monitor misbehaved on legit frame: alarm=%v err=%v", alarm, err)
	}
	if _, alarm, err := monitor.Observe(vrec); err != nil || alarm {
		t.Fatalf("monitor alarmed after a single attack frame: alarm=%v err=%v", alarm, err)
	}
	_, alarm, err := monitor.Observe(vrec)
	if err != nil {
		t.Fatal(err)
	}
	if !alarm {
		t.Fatal("monitor did not alarm after the second attack frame (2-of-4)")
	}

	t.Logf("kill chain complete: forged %q decoded by all receivers, replay guard bypassed, "+
		"PHY defense D² = %.3f (legit %.3f), streaming alarm on frame 2",
		forgedDecoded.Payload, verdict.DistanceSquared, legitVerdict.DistanceSquared)
}
