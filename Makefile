GO ?= go

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrent trial runner and everything built on it.
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus per-package micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure (several minutes at full trial counts).
experiments:
	$(GO) run ./cmd/experiments all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartbulb
	$(GO) run ./examples/threshold_calibration
	$(GO) run ./examples/realworld
	$(GO) run ./examples/forged_command

clean:
	$(GO) clean ./...
