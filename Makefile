GO ?= go

.PHONY: all build vet test race bench bench-json bench-check bench-compare soak soak-smoke experiments manifest-smoke stream-smoke lora-smoke obs-smoke calib-smoke alert-smoke examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrent trial runner and everything built on it.
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus per-package micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable perf trajectory: run the sync- and decode-path
# benchmarks (FFT and direct variants side by side, plus the stream scan
# stage and the defense detector) and aggregate ns/op, B/op, allocs/op
# into schema-versioned BENCH_sync.json.
bench-json:
	$(GO) run ./cmd/benchreport -out BENCH_sync.json -benchtime 100ms \
		-bench 'Synchronize|ReceiveAll|Correlator|StreamScan|DecodeAt|Despread|DetectorAnalyze' \
		./internal/dsp ./internal/zigbee ./internal/stream ./internal/emulation

# Validate the committed (or freshly generated) bench report schemas.
bench-check:
	$(GO) run ./cmd/benchreport -check BENCH_sync.json
	$(GO) run ./cmd/benchreport -check BENCH_stream.json

# Perf regression gate: re-run the sync-path benchmarks into a throwaway
# report and compare against the committed BENCH_sync.json baseline —
# fail on >25% ns/op slowdown or any allocs/op increase on the
# steady-state hot paths. Runs BEFORE bench-json in CI (bench-json
# overwrites the committed baseline in the working tree).
bench-compare:
	$(GO) run ./cmd/benchreport -out .bench-compare.json -benchtime 100ms -count 3 \
		-baseline BENCH_sync.json \
		-gate 'StreamScan|DecodeAt|DetectorAnalyze' \
		-bench 'Synchronize|ReceiveAll|Correlator|StreamScan|DecodeAt|Despread|DetectorAnalyze' \
		./internal/dsp ./internal/zigbee ./internal/stream ./internal/emulation
	rm -f .bench-compare.json

# Fleet soak: stampede the sharded, admission-controlled fleet with
# 256/1k/4k/10k concurrent replay sessions and aggregate frames/s, p99
# verdict latency, and drop/shed rate per offered load into
# BENCH_stream.json (the capacity-planning numbers README quotes).
soak:
	$(GO) run ./cmd/benchreport -out BENCH_stream.json -benchtime 1x \
		-bench 'EngineSaturation' ./internal/stream

# CI-sized soak: the 256-session point only, validated against the bench
# report schema alongside the committed baselines, then discarded.
soak-smoke:
	$(GO) run ./cmd/benchreport -out .soak-smoke.json -benchtime 1x \
		-bench 'EngineSaturation/sessions=256$$' ./internal/stream
	$(GO) run ./cmd/manifestcheck .soak-smoke.json BENCH_stream.json
	rm -f .soak-smoke.json

# Regenerate every table and figure (several minutes at full trial counts).
experiments:
	$(GO) run ./cmd/experiments all

# Smoke-test the observability contract: run a small sweep with -manifest
# and validate the emitted JSON against the checked-in schema checker.
manifest-smoke:
	$(GO) run ./cmd/experiments table2 -trials 5 -manifest .manifest-smoke.json > /dev/null
	$(GO) run ./cmd/manifestcheck .manifest-smoke.json
	rm -f .manifest-smoke.json

# Smoke-test the online defense service: boot hideseekd on loopback,
# classify an authentic+emulated capture over HTTP and raw TCP, and
# validate the shutdown manifest.
stream-smoke:
	$(GO) test ./cmd/hideseekd -run TestStreamSmoke -count=1

# Smoke-test the second victim PHY end to end: boot hideseekd serving
# zigbee+lora, classify a Wi-Lo capture via HTTP ?proto=lora and the raw
# TCP #HSPROTO preamble, lint the proto-labeled metrics, and check the
# shutdown manifest records the served protocol set.
lora-smoke:
	$(GO) test ./cmd/hideseekd -run TestLoRaSmoke -count=1

# Smoke-test the telemetry surface: boot hideseekd with trace export on,
# lint /metrics and /v1/obs?format=prometheus with the in-repo Prometheus
# parser, check /healthz build/runtime/window fields, and join the
# shutdown trace NDJSON to the classify verdicts.
obs-smoke:
	$(GO) test ./cmd/hideseekd -run TestObsSmoke -count=1

# Smoke-test online calibration: boot hideseekd with -calib, warm the
# zigbee class up with labeled traffic, check the fitted threshold lands
# between the class populations, inject a drifted authentic population,
# and assert the drift counters / threshold gauge / admin endpoints.
calib-smoke:
	$(GO) test ./cmd/hideseekd -run TestCalibSmoke -count=1

# Smoke-test the SLO alert engine end to end: boot hideseekd with a
# tight latency rule, drive load until the rule transitions
# pending→firing on /v1/alerts, assert lint-clean ALERTS series on
# /metrics, stop the load, watch the rule resolve, and check the
# shutdown manifest records the fired alert.
alert-smoke:
	$(GO) test ./cmd/hideseekd -run TestAlertSmoke -count=1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartbulb
	$(GO) run ./examples/threshold_calibration
	$(GO) run ./examples/realworld
	$(GO) run ./examples/forged_command

clean:
	$(GO) clean ./...
