// Package hideseek reproduces "Hide and Seek: Waveform Emulation Attack
// and Defense in Cross-Technology Communication" (ICDCS 2019) as a pure-Go,
// stdlib-only library.
//
// The implementation lives under internal/:
//
//   - internal/dsp      — FFT/IFFT, resampling, FIR filters, correlation
//   - internal/bits     — bit packing, CRCs, the 802.11 scrambler
//   - internal/zigbee   — IEEE 802.15.4 O-QPSK PHY + MAC (TX and three RX models)
//   - internal/wifi     — IEEE 802.11g OFDM transmit chain and inverses
//   - internal/channel  — AWGN, CFO, path loss, Rayleigh/Rician fading
//   - internal/hos      — higher-order statistics, k-means, classifier
//   - internal/emulation — the attack (Sec. V) and the defense (Sec. VI)
//   - internal/sim      — one driver per table/figure of the evaluation
//
// Runnable entry points are cmd/ctcattack, cmd/ctcdefend, cmd/experiments,
// and the programs under examples/. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's Sec. VII; see
// EXPERIMENTS.md for the paper-vs-measured record.
package hideseek
