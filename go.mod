module hideseek

go 1.22
