package hideseek

// One benchmark per table and figure of the paper's evaluation (Sec. VII),
// plus the ablations from DESIGN.md. Each bench runs a reduced-size version
// of the corresponding sim driver and reports the experiment's headline
// quantity via b.ReportMetric, so `go test -bench=.` both exercises and
// summarizes the reproduction. cmd/experiments runs the full-size versions.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hideseek/internal/runner"
	"hideseek/internal/sim"
)

// BenchmarkParallelSweep measures the trial-runner's scaling on a reduced
// Table II sweep at 1, 4, and GOMAXPROCS workers, reporting throughput as
// trials/sec per width.
func BenchmarkParallelSweep(b *testing.B) {
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range widths {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := runner.DefaultWorkers()
			runner.SetDefaultWorkers(workers)
			defer runner.SetDefaultWorkers(prev)
			var trials int64
			var elapsed time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				before := runner.TrialsExecuted()
				start := time.Now()
				if _, err := sim.Table2(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{9, 13, 17}, Trials: 40}); err != nil {
					b.Fatal(err)
				}
				elapsed += time.Since(start)
				trials += runner.TrialsExecuted() - before
			}
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(trials)/elapsed.Seconds(), "trials/s")
			}
		})
	}
}

func BenchmarkTable1SubcarrierSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Table1(sim.Config{}, []byte("000017"), 6, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Selected) != 7 {
			b.Fatalf("selected %d bins", len(res.Table.Selected))
		}
	}
}

func BenchmarkTable2AttackSuccess(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Table2(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{7, 11, 17}, Trials: 20})
		if err != nil {
			b.Fatal(err)
		}
		last = res.SuccessRates[len(res.SuccessRates)-1]
	}
	b.ReportMetric(last, "success@17dB")
}

func BenchmarkFig5WaveformEmulation(b *testing.B) {
	var nmse float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig5(sim.Config{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		nmse = res.TailNMSE
	}
	b.ReportMetric(nmse, "tailNMSE")
}

func BenchmarkFig6Constellation(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig6(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{17}})
		if err != nil {
			b.Fatal(err)
		}
		spread = res.RealSpread
	}
	b.ReportMetric(spread, "realSpread")
}

func BenchmarkFig7HammingHistogram(b *testing.B) {
	var zeroRate float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig7(sim.Config{Trials: 5})
		if err != nil {
			b.Fatal(err)
		}
		zeroRate = res.Emulated.Rate(0)
	}
	b.ReportMetric(zeroRate, "emulZeroDistRate")
}

func BenchmarkFig8CPBaseline(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig8(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{17}})
		if err != nil {
			b.Fatal(err)
		}
		gap = res.EmulatedCP.Median - res.OriginalCP.Median
	}
	b.ReportMetric(gap, "cpMedianGap")
}

func BenchmarkFig9DemodBaseline(b *testing.B) {
	var differ float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig9(sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.SymbolsAgree {
			b.Fatal("despread symbols differ")
		}
		differ = float64(res.ChipsDiffer)
	}
	b.ReportMetric(differ, "chipsDiffer")
}

func BenchmarkFig10C42(b *testing.B) {
	var emulated float64
	for i := 0; i < b.N; i++ {
		res, err := sim.CumulantSweep(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{7, 17}, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		emulated = res.EmulatedC42[1]
	}
	b.ReportMetric(emulated, "emulC42@17dB")
}

func BenchmarkFig11C40(b *testing.B) {
	var original float64
	for i := 0; i < b.N; i++ {
		res, err := sim.CumulantSweep(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{7, 17}, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		original = res.OriginalC40[1]
	}
	b.ReportMetric(original, "origC40@17dB")
}

func BenchmarkTable4DE2(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Table4(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{7, 12, 17}, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		gap = res.Emulated[2] / res.Original[2]
	}
	b.ReportMetric(gap, "separation@17dB")
}

func BenchmarkFig12Detection(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig12(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{11, 14, 17}, Trials: 4, Samples: 4})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Stats.Accuracy()
	}
	b.ReportMetric(acc, "accuracy")
}

func BenchmarkFig14DistanceSweep(b *testing.B) {
	budget := sim.DefaultLinkBudget()
	var usrpPER8m float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig14(sim.Config{Seed: int64(i + 1), Trials: 6}, sim.USRPReceiver(), budget, []float64{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		usrpPER8m = res.EmulatedPER[1]
	}
	b.ReportMetric(usrpPER8m, "usrpEmulPER@8m")
}

func BenchmarkFig14CommodityReceiver(b *testing.B) {
	budget := sim.DefaultLinkBudget()
	var ccPER8m float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Fig14(sim.Config{Seed: int64(i + 1), Trials: 6}, sim.CC26x2R1Receiver(), budget, []float64{1, 8})
		if err != nil {
			b.Fatal(err)
		}
		ccPER8m = res.EmulatedPER[1]
	}
	b.ReportMetric(ccPER8m, "ccEmulPER@8m")
}

func BenchmarkTable5RealDE2(b *testing.B) {
	budget := sim.DefaultLinkBudget()
	var q float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Table5(sim.Config{Seed: int64(i + 1), Trials: 4}, budget, []float64{1, 6})
		if err != nil {
			b.Fatal(err)
		}
		q = res.SuggestedQ
	}
	b.ReportMetric(q, "suggestedQ")
}

func BenchmarkAblationSubcarriers(b *testing.B) {
	var nmse7 float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AblationSubcarriers(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{13}, Trials: 5}, []int{5, 7, 9})
		if err != nil {
			b.Fatal(err)
		}
		nmse7 = res.TailNMSE[1]
	}
	b.ReportMetric(nmse7, "tailNMSE@7bins")
}

func BenchmarkAblationAlpha(b *testing.B) {
	var globalErr float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AblationAlpha(sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		globalErr = res.QuantError[0]
	}
	b.ReportMetric(globalErr, "globalQuantErr")
}

func BenchmarkAblationDefenseSource(b *testing.B) {
	var discSep float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AblationDefenseSource(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{15}, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		discSep = res.Separation[0]
	}
	b.ReportMetric(discSep, "discSeparation")
}

func BenchmarkAblationSampleCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.AblationSampleCount(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{15}, Trials: 4}, []int{128, 704}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectrum(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Spectrum(sim.Config{}, []byte("0000000017"))
		if err != nil {
			b.Fatal(err)
		}
		loss = res.TruncationLoss
	}
	b.ReportMetric(loss, "truncationLoss")
}

func BenchmarkAblationInterpolation(b *testing.B) {
	var linNMSE float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AblationInterpolation(sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		linNMSE = res.TailNMSE[1]
	}
	b.ReportMetric(linNMSE, "linearNMSE")
}

func BenchmarkAblationCoarseThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.AblationCoarseThreshold(sim.Config{}, []float64{1, 3, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracySweep(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AccuracySweep(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{11, 17}, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Accuracy[1]
	}
	b.ReportMetric(acc, "accuracy@17dB")
}

func BenchmarkAdaptiveDefense(b *testing.B) {
	var lowSNR float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AdaptiveAccuracy(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{9, 13, 17}, Trials: 6, Samples: 6})
		if err != nil {
			b.Fatal(err)
		}
		lowSNR = res.AdaptiveAccuracy[0]
	}
	b.ReportMetric(lowSNR, "adaptiveAcc@9dB")
}

func BenchmarkSessionReliability(b *testing.B) {
	var acked float64
	for i := 0; i < b.N; i++ {
		res, err := sim.SessionReliability(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{-6}, Trials: 10})
		if err != nil {
			b.Fatal(err)
		}
		acked = res.AckedRate[0]
	}
	b.ReportMetric(acked, "ackedRate@-6dB")
}

func BenchmarkROC(b *testing.B) {
	var auc float64
	for i := 0; i < b.N; i++ {
		res, err := sim.ROC(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{13}, Trials: 8})
		if err != nil {
			b.Fatal(err)
		}
		auc = res.AUC
	}
	b.ReportMetric(auc, "AUC@13dB")
}

func BenchmarkEvasion(b *testing.B) {
	var baseD2 float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Evasion(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{15}, Trials: 4})
		if err != nil {
			b.Fatal(err)
		}
		baseD2 = res.MeanD2[0]
	}
	b.ReportMetric(baseD2, "paperAttackD2")
}

func BenchmarkAMCClassification(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := sim.AMC(sim.Config{Seed: int64(i + 1), SNRsDB: []float64{15}, Samples: 2000, Trials: 3})
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Matrices[0].Accuracy()
	}
	b.ReportMetric(acc, "accuracy@15dB")
}

func BenchmarkCSMAScenario(b *testing.B) {
	var idleDelay float64
	for i := 0; i < b.N; i++ {
		res, err := sim.CSMAScenario(sim.Config{Seed: int64(i + 1), Trials: 50}, []float64{0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		idleDelay = res.MeanDelayUs[0]
	}
	b.ReportMetric(idleDelay, "idleDelayUs")
}
