// Forged command shows why MAC-layer replay detection cannot stop the CTC
// emulation attack: the attacker synthesizes a brand-new ZigBee frame
// (fresh sequence number, valid FCS) rather than replaying a recording.
// Only the physical-layer constellation defense catches it.
package main

import (
	"fmt"
	"log"

	"hideseek/internal/emulation"
	"hideseek/internal/zigbee"
)

func main() {
	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	guard, err := zigbee.NewReplayGuard(16)
	if err != nil {
		log.Fatal(err)
	}
	det, err := emulation.NewDetector(emulation.DefenseConfig{})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		log.Fatal(err)
	}

	deliver := func(label string, wave []complex128) {
		rec, err := rx.Receive(wave)
		if err != nil {
			fmt.Printf("%-22s PHY rejected: %v\n", label, err)
			return
		}
		frame, err := zigbee.DecodeMACFrame(rec.PSDU)
		if err != nil {
			fmt.Printf("%-22s MAC rejected: %v\n", label, err)
			return
		}
		replay, err := guard.Check(frame)
		if err != nil {
			log.Fatal(err)
		}
		verdict, err := det.AnalyzeReception(rec)
		if err != nil {
			log.Fatal(err)
		}
		status := "ACCEPTED"
		switch {
		case replay:
			status = "BLOCKED by replay guard"
		case verdict.Attack:
			status = "BLOCKED by PHY defense"
		}
		fmt.Printf("%-22s seq=%d cmd=%q  D²E=%.3f  → %s\n",
			label, frame.Seq, frame.Payload, verdict.DistanceSquared, status)
	}

	gateway := zigbee.NewTransmitter()
	legit := &zigbee.MACFrame{Type: zigbee.FrameData, Seq: 41, PANID: 0x1234, Dst: 0xB01B, Src: 1, Payload: []byte("unlock")}
	legitWave, err := gateway.TransmitFrame(legit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. gateway sends a legitimate \"unlock\" (seq 41):")
	deliver("   legitimate frame", legitWave)

	fmt.Println("2. attacker replays the recorded waveform via WiFi emulation:")
	replayed, err := attacker.Emulate(legitWave)
	if err != nil {
		log.Fatal(err)
	}
	deliver("   emulated replay", replayed.Emulated4M)

	fmt.Println("3. attacker forges a FRESH frame (seq 77) and emulates it:")
	forged := &zigbee.MACFrame{Type: zigbee.FrameData, Seq: 77, PANID: 0x1234, Dst: 0xB01B, Src: 1, Payload: []byte("unlock")}
	res, err := emulation.ForgeFrame(attacker, forged)
	if err != nil {
		log.Fatal(err)
	}
	deliver("   forged command", res.Emulated4M)

	fmt.Println("\nthe replay guard stops step 2 but not step 3; the constellation")
	fmt.Println("defense stops both, because the footprint lives in the waveform.")
}
