// Realworld walks the Sec. VI-C real-environment scenario: the link adds
// Rician multipath, pedestrian Doppler drift, and a residual carrier
// frequency offset. The example contrasts the plain detector with the
// offset-robust variant (|C40| + mean removal) on both waveform classes,
// and prints the k-means view of the constellation (Fig. 6).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/hos"
	"hideseek/internal/zigbee"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	gateway := zigbee.NewTransmitter()
	observed, err := gateway.TransmitPSDU([]byte("0042"))
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.Emulate(observed)
	if err != nil {
		log.Fatal(err)
	}

	// Real-environment channel: LoS-dominated multipath, walking-speed
	// phase drift, 120 Hz residual CFO, 15 dB AWGN.
	mp, err := channel.NewRicianMultipath(3, 0.35, 8, rng)
	if err != nil {
		log.Fatal(err)
	}
	doppler, err := channel.NewDopplerPhaseNoise(2e-4, rng)
	if err != nil {
		log.Fatal(err)
	}
	cfo, err := channel.NewCFO(120, zigbee.SampleRate, 1.1)
	if err != nil {
		log.Fatal(err)
	}
	awgn, err := channel.NewAWGN(15, rng)
	if err != nil {
		log.Fatal(err)
	}
	link, err := channel.NewChain(mp, doppler, cfo, awgn)
	if err != nil {
		log.Fatal(err)
	}

	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := emulation.NewDetector(emulation.DefenseConfig{})
	if err != nil {
		log.Fatal(err)
	}
	robust, err := emulation.NewDetector(emulation.DefenseConfig{UseAbsC40: true, RemoveMean: true})
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, wave []complex128) {
		rec, err := rx.Receive(link.Apply(wave))
		if err != nil {
			fmt.Printf("%-9s reception failed: %v\n", name, err)
			return
		}
		vp, err := plain.AnalyzeReception(rec)
		if err != nil {
			log.Fatal(err)
		}
		vr, err := robust.AnalyzeReception(rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s plain D²E = %.4f (attack=%v)   robust D²E = %.4f (attack=%v)\n",
			name, vp.DistanceSquared, vp.Attack, vr.DistanceSquared, vr.Attack)

		// Fig. 6 view: cluster the reconstructed constellation.
		chips, err := emulation.ChipsFromReception(rec, emulation.SourceDiscriminator)
		if err != nil {
			log.Fatal(err)
		}
		points, err := emulation.ReconstructConstellation(chips)
		if err != nil {
			log.Fatal(err)
		}
		km, err := hos.KMeans(points, 4, 100, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s k-means centers:", name)
		for _, c := range km.Centers {
			fmt.Printf(" (%+.2f%+.2fi)", real(c), imag(c))
		}
		fmt.Printf("  within-cluster MSE %.4f\n", km.WithinSS/float64(len(points)))
	}

	fmt.Println("real environment: Rician multipath + Doppler drift + 120 Hz CFO + 15 dB AWGN")
	show("authentic", observed)
	show("emulated", res.Emulated4M)
}
