// Smartbulb replays the paper's motivating scenario (Sec. IV): a ZigBee
// gateway controls a smart bulb with MAC-layer data frames; a WiFi attacker
// eavesdrops the "off" command during time slot t1, waits (CSMA/CA), and
// later emulates it from its 2440 MHz WiFi radio to switch the bulb off —
// bypassing the gateway entirely. The bulb-side defense flags the replay.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/zigbee"
)

// bulb models the victim appliance: it acts on MAC data frames addressed
// to it whose payload names a command.
type bulb struct {
	addr  uint16
	pan   uint16
	on    bool
	rx    *zigbee.Receiver
	det   *emulation.Detector
	alarm int // count of frames flagged by the defense
}

func (b *bulb) hear(waveform []complex128) {
	rec, err := b.rx.Receive(waveform)
	if err != nil {
		fmt.Printf("  bulb: no valid frame (%v)\n", err)
		return
	}
	frame, err := zigbee.DecodeMACFrame(rec.PSDU)
	if err != nil {
		fmt.Printf("  bulb: bad MAC frame: %v\n", err)
		return
	}
	if frame.Dst != b.addr || frame.PANID != b.pan {
		fmt.Println("  bulb: frame for someone else, ignored")
		return
	}
	verdict, err := b.det.AnalyzeReception(rec)
	if err != nil {
		log.Fatal(err)
	}
	if verdict.Attack {
		b.alarm++
		fmt.Printf("  bulb: DEFENSE ALERT — D²E = %.3f exceeds Q = %.2f; command %q rejected\n",
			verdict.DistanceSquared, b.det.Threshold(), frame.Payload)
		return
	}
	switch string(frame.Payload) {
	case "on":
		b.on = true
	case "off":
		b.on = false
	}
	fmt.Printf("  bulb: executed %q (light now on=%v, D²E = %.3f)\n", frame.Payload, b.on, verdict.DistanceSquared)
}

func main() {
	rng := rand.New(rand.NewSource(7))
	gateway := zigbee.NewTransmitter()
	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	det, err := emulation.NewDetector(emulation.DefenseConfig{})
	if err != nil {
		log.Fatal(err)
	}
	lamp := &bulb{addr: 0xB01B, pan: 0x1234, on: true, rx: rx, det: det}

	// The indoor link: 15 dB with mild Rician fading.
	mp, err := channel.NewRicianMultipath(2, 0.25, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	awgn, err := channel.NewAWGN(15, rng)
	if err != nil {
		log.Fatal(err)
	}
	link, err := channel.NewChain(mp, awgn)
	if err != nil {
		log.Fatal(err)
	}

	// t1 — the gateway turns the bulb off; the attacker eavesdrops.
	offCmd := &zigbee.MACFrame{
		Type: zigbee.FrameData, Seq: 9, PANID: lamp.pan,
		Dst: lamp.addr, Src: 0x0001, Payload: []byte("off"),
	}
	offWave, err := gateway.TransmitFrame(offCmd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t1: gateway sends \"off\"; bulb obeys; attacker records the waveform")
	lamp.hear(link.Apply(offWave))

	// The gateway restores the light.
	onCmd := &zigbee.MACFrame{
		Type: zigbee.FrameData, Seq: 10, PANID: lamp.pan,
		Dst: lamp.addr, Src: 0x0001, Payload: []byte("on"),
	}
	onWave, err := gateway.TransmitFrame(onCmd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t2: gateway sends \"on\"")
	lamp.hear(link.Apply(onWave))

	// t3 — the attacker emulates the recorded "off" waveform from its WiFi
	// radio at 2440 MHz. The channel is clear (CSMA/CA), so it transmits.
	attacker, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.Emulate(offWave)
	if err != nil {
		log.Fatal(err)
	}
	atVictim, err := emulation.ReceiveAtZigBee(emulation.OnCarrierWaveform(res.Emulated20M))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t3: WiFi attacker replays the emulated \"off\" from 2440 MHz")
	lamp.hear(link.Apply(atVictim))

	fmt.Printf("\nfinal state: light on=%v, defense alarms=%d\n", lamp.on, lamp.alarm)
	if lamp.on && lamp.alarm == 1 {
		fmt.Println("the emulated command decoded correctly but was caught by the defense")
	}
}
