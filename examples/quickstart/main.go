// Quickstart: the smallest end-to-end tour of the library — transmit a
// ZigBee frame, emulate it with the WiFi attack pipeline, decode it at the
// victim, and detect it with the constellation defense.
package main

import (
	"fmt"
	"log"

	"hideseek/internal/emulation"
	"hideseek/internal/zigbee"
)

func main() {
	// 1. A ZigBee gateway transmits a control message.
	gateway := zigbee.NewTransmitter()
	observed, err := gateway.TransmitPSDU([]byte("light on"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway sent %d baseband samples\n", len(observed))

	// 2. The WiFi attacker eavesdrops the waveform and emulates it:
	//    interpolate ×5, segment into 4 µs OFDM symbols, keep 7 subcarriers,
	//    quantize to 64-QAM, and re-synthesize with cyclic prefixes.
	attacker, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.Emulate(observed)
	if err != nil {
		log.Fatal(err)
	}
	nmse, err := res.TailNMSE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attacker emulated the frame with %d WiFi symbols (tail NMSE %.3f)\n",
		res.NumSegments, nmse)

	// 3. The victim ZigBee receiver decodes the emulated waveform — the
	//    attack passes DSSS despreading despite the distortion.
	victim, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := victim.Receive(res.Emulated4M)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim decoded the attacker's frame as %q — attack works\n", rec.PSDU)

	// 4. The defense reconstructs a QPSK constellation from the chip stream
	//    and tests the fourth-order cumulants against QPSK theory.
	detector, err := emulation.NewDetector(emulation.DefenseConfig{})
	if err != nil {
		log.Fatal(err)
	}
	verdict, err := detector.AnalyzeReception(rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defense: D²E = %.4f (Q = %.2f) → attack detected: %v\n",
		verdict.DistanceSquared, detector.Threshold(), verdict.Attack)

	// Compare with the authentic waveform.
	authRec, err := victim.Receive(observed)
	if err != nil {
		log.Fatal(err)
	}
	authVerdict, err := detector.AnalyzeReception(authRec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authentic frame: D²E = %.4f → attack detected: %v\n",
		authVerdict.DistanceSquared, authVerdict.Attack)
}
