// Threshold calibration reproduces the defense deployment procedure of
// Sec. VII-B: collect D²E on 50 training waveforms per class, derive the
// decision threshold Q, and validate it on 50 held-out waveforms per class
// across the attack-viable SNR range.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/zigbee"
)

func main() {
	const (
		train = 50
		test  = 50
	)
	snrs := []float64{11, 13, 15, 17}

	gateway := zigbee.NewTransmitter()
	observed, err := gateway.TransmitPSDU([]byte("00000"))
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.Emulate(observed)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	det, err := emulation.NewDetector(emulation.DefenseConfig{})
	if err != nil {
		log.Fatal(err)
	}

	collect := func(seed int64, n int) (auth, emul []float64) {
		rng := rand.New(rand.NewSource(seed))
		for _, snr := range snrs {
			ch, err := channel.NewAWGN(snr, rng)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if recA, err := rx.Receive(ch.Apply(observed)); err == nil {
					if v, err := det.AnalyzeReception(recA); err == nil {
						auth = append(auth, v.DistanceSquared)
					}
				}
				if recE, err := rx.Receive(ch.Apply(res.Emulated4M)); err == nil {
					if v, err := det.AnalyzeReception(recE); err == nil {
						emul = append(emul, v.DistanceSquared)
					}
				}
			}
		}
		return auth, emul
	}

	// Training phase.
	trainAuth, trainEmul := collect(100, train/len(snrs))
	q, err := emulation.CalibrateThreshold(trainAuth, trainEmul)
	if err != nil {
		log.Fatalf("calibration failed: %v", err)
	}
	fmt.Printf("training: %d authentic + %d emulated waveforms across SNR %v dB\n",
		len(trainAuth), len(trainEmul), snrs)
	fmt.Printf("calibrated threshold Q = %.4f (paper's pipeline lands on 0.5; Sec. VII-C-4)\n\n", q)

	// Held-out evaluation.
	testAuth, testEmul := collect(200, test/len(snrs))
	var stats emulation.DetectionStats
	for _, d2 := range testAuth {
		stats.Score(false, d2 > q)
	}
	for _, d2 := range testEmul {
		stats.Score(true, d2 > q)
	}
	sumA, err := emulation.NewSummarizeD2(testAuth)
	if err != nil {
		log.Fatal(err)
	}
	sumE, err := emulation.NewSummarizeD2(testEmul)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out authentic D²E: min %.4f  mean %.4f  max %.4f\n", sumA.Min, sumA.Mean, sumA.Max)
	fmt.Printf("held-out emulated  D²E: min %.4f  mean %.4f  max %.4f\n", sumE.Min, sumE.Mean, sumE.Max)
	fmt.Printf("decisions: TP %d  FN %d  TN %d  FP %d → accuracy %.1f%%\n",
		stats.TruePositives, stats.FalseNegatives, stats.TrueNegatives, stats.FalsePositives,
		100*stats.Accuracy())
}
