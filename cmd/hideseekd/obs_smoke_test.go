package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hideseek/internal/obs"
)

// TestObsSmoke is the end-to-end observability check behind
// `make obs-smoke`: boot the daemon with trace export on, classify a
// capture, then verify that /metrics passes the in-repo Prometheus
// linter, /healthz reports build identity, runtime gauges and rolling
// latency windows, /v1/traces serves span traces, and the -tracefile
// NDJSON written at shutdown joins to the classify verdicts with
// scan/decode/detect spans present.
func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hideseekd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	tracePath := filepath.Join(dir, "traces.ndjson")
	proc := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-deadline", "10s",
		"-traces", "64", "-tracefile", tracePath)
	stderr, err := proc.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()

	addrs := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "hideseekd: listening on http://"); ok {
				select {
				case addrs <- rest:
				default:
				}
			}
		}
	}()
	var httpAddr string
	select {
	case httpAddr = <-addrs:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its listen address")
	}

	capture, want := testCapture(t, 77)
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/classify", httpAddr),
		"application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var cr classifyResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Verdicts) != len(want) {
		t.Fatalf("classify: %d verdicts, want %d", len(cr.Verdicts), len(want))
	}
	wantIDs := map[uint64]uint64{} // trace id → verdict seq
	for i, v := range cr.Verdicts {
		if v.TraceID == 0 {
			t.Fatalf("verdict %d carries no trace id", i)
		}
		wantIDs[v.TraceID] = v.Seq
	}

	// /metrics: right content type, passes the in-repo linter, carries
	// the pipeline families and runtime gauges.
	lintEndpoint := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", url, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
			t.Errorf("GET %s content type %q, want %q", url, ct, obs.PrometheusContentType)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := obs.LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("GET %s fails lint: %v\n%s", url, err, buf.String())
		}
		return buf.String()
	}
	metrics := lintEndpoint(fmt.Sprintf("http://%s/metrics", httpAddr))
	for _, fam := range []string{
		"hideseek_stream_frames_total",
		"# TYPE hideseek_stream_scan_ns histogram",
		`hideseek_stream_scan_ns_bucket{le="+Inf"}`,
		"hideseek_go_goroutines",
	} {
		if !strings.Contains(metrics, fam) {
			t.Errorf("/metrics lacks %q", fam)
		}
	}
	lintEndpoint(fmt.Sprintf("http://%s/v1/obs?format=prometheus", httpAddr))

	// /healthz: build identity, runtime gauges, rolling latency windows.
	resp, err = http.Get(fmt.Sprintf("http://%s/healthz", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var h health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, err %v", h, err)
	}
	if h.Build.GoVersion == "" {
		t.Error("healthz build info lacks go version")
	}
	if h.Runtime.Goroutines < 1 || h.Runtime.HeapAllocBytes == 0 {
		t.Errorf("healthz runtime gauges implausible: %+v", h.Runtime)
	}
	scanWin, ok := h.Windows["stream.scan_ns"]
	if !ok {
		t.Fatalf("healthz lacks stream.scan_ns window (have %v)", h.Windows)
	}
	if scanWin.Last60s.Count < int64(len(want)) {
		t.Errorf("last-60s scan window count %d, want >= %d", scanWin.Last60s.Count, len(want))
	}

	// /v1/traces: NDJSON, joined to the classify verdicts.
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/traces", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	live := decodeTraces(t, resp.Body)
	resp.Body.Close()
	if len(live) < len(want) {
		t.Fatalf("/v1/traces served %d traces, want >= %d", len(live), len(want))
	}

	// Shutdown flushes the trace file; every classify verdict joins to a
	// trace whose timeline covers scan, decode, and detect.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	exported := decodeTraces(t, f)
	f.Close()
	byID := map[uint64]obs.Trace{}
	for _, tr := range exported {
		byID[tr.ID] = tr
	}
	for id, seq := range wantIDs {
		tr, ok := byID[id]
		if !ok {
			t.Fatalf("trace %d (verdict seq %d) missing from %s", id, seq, tracePath)
		}
		if tr.Seq != seq {
			t.Errorf("trace %d: seq %d != verdict seq %d", id, tr.Seq, seq)
		}
		stages := map[string]bool{}
		for _, sp := range tr.Spans {
			stages[sp.Stage] = true
		}
		for _, stage := range []string{"scan", "decode", "detect"} {
			if !stages[stage] {
				t.Errorf("trace %d lacks %s span: %+v", id, stage, tr.Spans)
			}
		}
	}
}

// decodeTraces reads NDJSON span traces.
func decodeTraces(t *testing.T, r interface{ Read([]byte) (int, error) }) []obs.Trace {
	t.Helper()
	var out []obs.Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var tr obs.Trace
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("trace line %d: %v (%q)", len(out), err, sc.Text())
		}
		out = append(out, tr)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
