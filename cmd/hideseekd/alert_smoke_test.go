package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hideseek/internal/obs"
)

// TestAlertSmoke is the end-to-end SLO check behind `make alert-smoke`:
// boot the daemon with an impossibly tight latency rule, drive classify
// load until the rule walks inactive→pending→firing on /v1/alerts,
// verify the firing state renders as lint-clean ALERTS series on
// /metrics and the heavy-hitter table attributes the traffic, then stop
// the load, watch the rule resolve, and check the shutdown manifest
// records that the alert fired.
func TestAlertSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hideseekd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// 1µs p99 over a 1s window (one 10s histogram slot): any real verdict
	// breaches, and the window drains within a slot of the load stopping.
	// A short pending hold exercises the two-phase escalation; a short
	// resolve hold keeps the recovery leg fast.
	rulesPath := filepath.Join(dir, "slo.rules")
	rules := "smoke_latency: p99(stream.verdict_ns) < 1us over 1s for 300ms resolve 500ms severity page\n"
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}

	manifestPath := filepath.Join(dir, "manifest.json")
	proc := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-deadline", "10s",
		"-slo-rules", rulesPath, "-slo-every", "100ms",
		"-manifest", manifestPath)
	stderr, err := proc.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()

	addrs := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "hideseekd: listening on http://"); ok {
				select {
				case addrs <- rest:
				default:
				}
			}
		}
	}()
	var httpAddr string
	select {
	case httpAddr = <-addrs:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its listen address")
	}

	capture, _ := testCapture(t, 99)
	classify := func() {
		t.Helper()
		resp, err := http.Post(fmt.Sprintf("http://%s/v1/classify", httpAddr),
			"application/octet-stream", bytes.NewReader(capture))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify: %s", resp.Status)
		}
	}
	getAlerts := func() alertsResponse {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/alerts", httpAddr))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ar alertsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}
	ruleState := func(ar alertsResponse) string {
		for _, r := range ar.Rules {
			if r.Name == "smoke_latency" {
				return r.State
			}
		}
		t.Fatalf("/v1/alerts lacks smoke_latency: %+v", ar.Rules)
		return ""
	}

	if ar := getAlerts(); !ar.Enabled {
		t.Fatal("/v1/alerts reports the engine disabled")
	}

	// Drive load until the rule fires. Each classify observes verdict
	// latencies far above 1µs, so the dual windows confirm within a few
	// 100ms evaluation ticks plus the 300ms pending hold.
	deadline := time.Now().Add(30 * time.Second)
	var state string
	for {
		classify()
		if state = ruleState(getAlerts()); state == "firing" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rule never fired; state %q", state)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The escalation must have passed through pending (the For hold).
	ar := getAlerts()
	saw := map[string]bool{}
	for _, tr := range ar.History {
		if tr.Rule == "smoke_latency" {
			saw[tr.To] = true
		}
	}
	if !saw["pending"] || !saw["firing"] {
		t.Errorf("history %v lacks pending→firing arc", ar.History)
	}

	// Firing renders as lint-clean ALERTS plus the budget gauge.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	metrics := buf.String()
	if err := obs.LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("/metrics fails lint while firing: %v\n%s", err, metrics)
	}
	for _, want := range []string{
		`ALERTS{alertname="smoke_latency",severity="page",state="firing"} 1`,
		`hideseek_slo_budget_remaining{rule="smoke_latency"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q while firing", want)
		}
	}

	// The heavy-hitter table attributes the classify traffic.
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/top?k=5", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var top struct {
		Frames    []obs.TopKEntry `json:"frames"`
		LatencyNS []obs.TopKEntry `json:"latency_ns"`
	}
	err = json.NewDecoder(resp.Body).Decode(&top)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Frames) == 0 || top.Frames[0].Count <= 0 {
		t.Errorf("/v1/top frames table empty under load: %+v", top)
	}
	if len(top.LatencyNS) == 0 {
		t.Errorf("/v1/top latency table empty under load: %+v", top)
	}

	// Stop the load: the 1s window drains when its histogram slot ages
	// out (≤10s), then the resolve hold runs. Rules evaluate every 100ms.
	deadline = time.Now().Add(30 * time.Second)
	for {
		if state = ruleState(getAlerts()); state == "resolved" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rule never resolved; state %q", state)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Shutdown: the manifest records the rule and that it fired.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	m, err := obs.ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("shutdown manifest invalid: %v", err)
	}
	var rec *obs.AlertSample
	for i := range m.Alerts {
		if m.Alerts[i].Name == "smoke_latency" {
			rec = &m.Alerts[i]
		}
	}
	if rec == nil {
		t.Fatalf("manifest lacks smoke_latency alert: %+v", m.Alerts)
	}
	if rec.FiredTotal < 1 {
		t.Errorf("manifest alert fired_total = %d, want >= 1", rec.FiredTotal)
	}
	if rec.State != "resolved" {
		t.Errorf("manifest alert state %q, want resolved", rec.State)
	}
}
