package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/obs"
	"hideseek/internal/stream"
	"hideseek/internal/zigbee"
)

// calibCapture renders a cf32 capture repeating one class's waveform n
// times: authentic ZigBee frames or their WiFi-emulated counterparts.
func calibCapture(t *testing.T, seed int64, emulated bool, n int) []byte {
	t.Helper()
	auth, err := zigbee.NewTransmitter().TransmitPSDU([]byte("hs-calib"))
	if err != nil {
		t.Fatal(err)
	}
	wf := auth
	if emulated {
		em, err := emulation.NewEmulator(emulation.AttackConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := em.Emulate(auth)
		if err != nil {
			t.Fatal(err)
		}
		wf = res.Emulated4M
	}
	wfs := make([][]complex128, n)
	for i := range wfs {
		wfs[i] = wf
	}
	capture, err := stream.BuildCapture(rand.New(rand.NewSource(seed)), 1e-3, 500, wfs...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := iq.WriteCF32(&buf, capture); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// classify POSTs a capture and returns the decided verdicts.
func classify(t *testing.T, url string, capture []byte) []stream.Verdict {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	var cr classifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	for i, v := range cr.Verdicts {
		if !v.Decided() {
			t.Fatalf("%s verdict %d undecided: dropped=%v err=%q", url, i, v.Dropped, v.Err)
		}
	}
	return cr.Verdicts
}

func getCalib(t *testing.T, httpAddr string) calibStatus {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/v1/calib", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st calibStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCalibSmoke is the end-to-end check behind `make calib-smoke`: boot
// the daemon with online calibration on, warm the zigbee class up with
// labeled traffic, assert the fitted threshold lands between the two
// observed populations, push the authentic D² population off its baseline
// (the oscillator-drift regression shape), and assert the drift counter,
// the calibration gauge, and the admin endpoints all surface it — with
// /metrics still passing the Prometheus linter.
func TestCalibSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hideseekd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	proc := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2", "-deadline", "10s",
		"-calib", "-calib-warmup", "6", "-calib-drift-every", "1ms")
	stderr, err := proc.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()

	addrs := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "hideseekd: listening on http://"); ok {
				select {
				case addrs <- rest:
				default:
				}
			}
		}
	}()
	var httpAddr string
	select {
	case httpAddr = <-addrs:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its listen address")
	}

	// Warmup phase: labeled authentic then labeled emulated traffic. The
	// fallback (default) threshold governs until both classes are warm.
	authV := classify(t, fmt.Sprintf("http://%s/v1/classify?calib_label=authentic", httpAddr),
		calibCapture(t, 61, false, 6))
	if len(authV) != 6 {
		t.Fatalf("authentic warmup: %d verdicts, want 6", len(authV))
	}
	for i, v := range authV {
		if v.CalibSource != "default" {
			t.Fatalf("warmup verdict %d source %q, want default", i, v.CalibSource)
		}
	}
	emulV := classify(t, fmt.Sprintf("http://%s/v1/classify?calib_label=emulated", httpAddr),
		calibCapture(t, 62, true, 6))
	if len(emulV) != 6 {
		t.Fatalf("emulated warmup: %d verdicts, want 6", len(emulV))
	}

	// The fitted boundary must separate the two observed populations.
	maxAuth, minEmul := 0.0, 1e9
	for _, v := range authV {
		if v.DistanceSquared > maxAuth {
			maxAuth = v.DistanceSquared
		}
	}
	for _, v := range emulV {
		if v.DistanceSquared < minEmul {
			minEmul = v.DistanceSquared
		}
	}
	st := getCalib(t, httpAddr)
	if !st.Enabled || len(st.Classes) != 1 {
		t.Fatalf("GET /v1/calib: %+v, want enabled with one class", st)
	}
	cls := st.Classes[0]
	if cls.Class != "zigbee" || cls.State != "calibrated" || cls.Source != "fitted" {
		t.Fatalf("class after warmup: %+v, want calibrated zigbee with fitted source", cls)
	}
	if cls.Threshold <= maxAuth || cls.Threshold >= minEmul {
		t.Fatalf("fitted threshold %v outside the observed class gap (%v, %v)", cls.Threshold, maxAuth, minEmul)
	}

	// Unlabeled traffic now runs against the fitted threshold.
	for i, v := range classify(t, fmt.Sprintf("http://%s/v1/classify", httpAddr), calibCapture(t, 63, false, 2)) {
		if v.CalibSource != "fitted" || v.CalibThreshold != cls.Threshold || v.Attack {
			t.Fatalf("fitted-era verdict %d: (%v, %q, attack=%v), want (%v, fitted, false)",
				i, v.CalibThreshold, v.CalibSource, v.Attack, cls.Threshold)
		}
	}

	// Drift injection: the authentic population walks an order of
	// magnitude above its fitted baseline (operator-labeled replay of
	// drifted-oscillator captures). 16 frames push the 60 s window past
	// the default MinWindowCount gate; the windowed quantiles cross
	// DriftFrac and the drift counter must move.
	classify(t, fmt.Sprintf("http://%s/v1/classify?calib_label=authentic", httpAddr),
		calibCapture(t, 64, true, 16))
	st = getCalib(t, httpAddr)
	if st.Classes[0].DriftTotal == 0 {
		t.Fatalf("drift injection raised no drift events: %+v", st.Classes[0])
	}
	if st.Classes[0].LastDrift == nil {
		t.Fatalf("drift total %d but no last_drift: %+v", st.Classes[0].DriftTotal, st.Classes[0])
	}

	// Operator override through PUT /v1/calib outranks the fit; clearing
	// restores it. Unknown classes 404.
	put := func(body string) *http.Response {
		req, err := http.NewRequest(http.MethodPut, fmt.Sprintf("http://%s/v1/calib", httpAddr), strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := put(`{"class":"zigbee","threshold":0.42}`)
	var after calibStatusClass
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || after.Source != "operator" || after.Threshold != 0.42 {
		t.Fatalf("override PUT: status %d, class %+v", resp.StatusCode, after)
	}
	resp = put(`{"class":"nope","rearm":true}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown class PUT: status %d, want 404", resp.StatusCode)
	}
	resp = put(`{"class":"zigbee","clear_override":true}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clear_override PUT: status %d", resp.StatusCode)
	}
	if st = getCalib(t, httpAddr); st.Classes[0].Source != "fitted" {
		t.Fatalf("after clear_override: source %q, want fitted", st.Classes[0].Source)
	}

	// /healthz inlines the calibration table.
	resp, err = http.Get(fmt.Sprintf("http://%s/healthz", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var h health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || len(h.Calibration) != 1 || h.Calibration[0].Class != "zigbee" {
		t.Fatalf("healthz calibration table: %+v (err %v)", h.Calibration, err)
	}

	// /metrics: lints clean and carries the drift counters and the
	// per-class threshold gauge.
	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	_, err = metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheus(bytes.NewReader(metrics.Bytes())); err != nil {
		t.Fatalf("/metrics fails lint: %v", err)
	}
	for _, fam := range []string{
		"hideseek_stream_calib_drift_total",
		"hideseek_stream_zigbee_calib_drift_total",
		"hideseek_calib_threshold_zigbee",
	} {
		if !strings.Contains(metrics.String(), fam) {
			t.Errorf("/metrics lacks %q", fam)
		}
	}
	for _, line := range strings.Split(metrics.String(), "\n") {
		if strings.HasPrefix(line, "hideseek_stream_calib_drift_total ") {
			if strings.TrimPrefix(line, "hideseek_stream_calib_drift_total ") == "0" {
				t.Errorf("stream.calib_drift exported as 0 after drift injection")
			}
		}
	}

	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// calibStatusClass mirrors calib.Status for decoding PUT responses
// without importing the calib package's time-bearing fields.
type calibStatusClass struct {
	Class     string  `json:"class"`
	State     string  `json:"state"`
	Source    string  `json:"source"`
	Threshold float64 `json:"threshold"`
}
