package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/stream"
	"hideseek/internal/zigbee"
)

// testCapture renders a cf32 capture holding one authentic and one
// emulated frame, returning the raw bytes and the expected attack flags
// in stream order.
func testCapture(t *testing.T, seed int64) ([]byte, []bool) {
	t.Helper()
	auth, err := zigbee.NewTransmitter().TransmitPSDU([]byte("hs-daemon"))
	if err != nil {
		t.Fatal(err)
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Emulate(auth)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := stream.BuildCapture(rand.New(rand.NewSource(seed)), 1e-3, 500, auth, res.Emulated4M)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := iq.WriteCF32(&buf, capture); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), []bool{false, true}
}

func testDaemon(t *testing.T, workers int) (*daemon, *httptest.Server) {
	t.Helper()
	fleet, err := stream.NewFleet(stream.FleetConfig{
		Config: stream.Config{
			Workers:  workers,
			Receiver: zigbee.ReceiverConfig{SyncThreshold: 0.3},
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(fleet, 30*time.Second)
	ts := httptest.NewServer(d.routes())
	t.Cleanup(func() {
		ts.Close()
		fleet.Close()
	})
	return d, ts
}

func TestClassifyEndpoint(t *testing.T) {
	_, ts := testDaemon(t, 2)
	capture, want := testCapture(t, 5)
	resp, err := http.Post(ts.URL+"/v1/classify", "application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr classifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Verdicts) != len(want) {
		t.Fatalf("%d verdicts, want %d", len(cr.Verdicts), len(want))
	}
	for i, v := range cr.Verdicts {
		if !v.Decided() {
			t.Fatalf("verdict %d undecided: dropped=%v err=%q", i, v.Dropped, v.Err)
		}
		if v.Attack != want[i] {
			t.Errorf("verdict %d attack=%v, want %v (D²E %.4f)", i, v.Attack, want[i], v.DistanceSquared)
		}
	}
	if cr.Stats.Frames != int64(len(want)) {
		t.Errorf("stats frames %d, want %d", cr.Stats.Frames, len(want))
	}
}

// streamRec decodes one NDJSON line of a /v1/stream (or raw TCP)
// response: verdict records carry "seq", the trailer carries "stats".
type streamRec struct {
	Seq    *uint64       `json:"seq"`
	Attack bool          `json:"attack"`
	Stats  *stream.Stats `json:"stats"`
	Err    string        `json:"error"`
}

func readStream(t *testing.T, r *bufio.Scanner) ([]streamRec, *streamRec) {
	t.Helper()
	var verdicts []streamRec
	for r.Scan() {
		var rec streamRec
		if err := json.Unmarshal(r.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", r.Text(), err)
		}
		if rec.Stats != nil {
			return verdicts, &rec
		}
		if rec.Seq == nil {
			t.Fatalf("record without seq or stats: %q", r.Text())
		}
		verdicts = append(verdicts, rec)
	}
	t.Fatalf("stream ended without a stats trailer (scan err %v)", r.Err())
	return nil, nil
}

// TestConcurrentStreamClients is the acceptance check: four streaming
// clients against one shared engine, each receiving its own ordered
// verdicts. Run under -race in CI.
func TestConcurrentStreamClients(t *testing.T) {
	_, ts := testDaemon(t, 4)
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			capture, want := testCapture(t, int64(100+c))
			resp, err := http.Post(ts.URL+"/v1/stream", "application/octet-stream", bytes.NewReader(capture))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			verdicts, trail := readStream(t, sc)
			if trail.Err != "" {
				errs <- fmt.Errorf("client %d: trailer error %q", c, trail.Err)
				return
			}
			if len(verdicts) != len(want) {
				errs <- fmt.Errorf("client %d: %d verdicts, want %d", c, len(verdicts), len(want))
				return
			}
			for i, v := range verdicts {
				if *v.Seq != uint64(i) {
					errs <- fmt.Errorf("client %d: verdict %d has seq %d", c, i, *v.Seq)
					return
				}
				if v.Attack != want[i] {
					errs <- fmt.Errorf("client %d: verdict %d attack=%v, want %v", c, i, v.Attack, want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMethodAndHealthEndpoints(t *testing.T) {
	d, ts := testDaemon(t, 2)
	for _, path := range []string{"/v1/classify", "/v1/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != d.fleet.Workers() {
		t.Errorf("health %+v", h)
	}
	if h.Shards != d.fleet.Shards() || len(h.ShardTable) != d.fleet.Shards() {
		t.Errorf("health shard table %+v, want %d shards", h.ShardTable, d.fleet.Shards())
	}
	for i, row := range h.ShardTable {
		if row.Shard != i || row.Tier != "accept" {
			t.Errorf("shard row %d: %+v, want shard %d tier accept", i, row, i)
		}
	}
}

func TestObsEndpointExposesDropCounter(t *testing.T) {
	_, ts := testDaemon(t, 2)
	resp, err := http.Get(ts.URL + "/v1/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Counters["stream.dropped_frames"]; !ok {
		t.Errorf("snapshot lacks stream.dropped_frames: %v", snap.Counters)
	}
}

// TestAdmissionShedsWith503: with admission enabled and the latency
// thresholds set to one nanosecond, the first session (cold shard, empty
// latency window) is served normally; once it has scanned frames the
// shard's windowed scan p95 trips both tiers and the next session on the
// same shard is shed — /v1/classify and /v1/stream must answer 503, not
// a half-open NDJSON stream.
func TestAdmissionShedsWith503(t *testing.T) {
	fleet, err := stream.NewFleet(stream.FleetConfig{
		Config: stream.Config{
			Workers:  2,
			Receiver: zigbee.ReceiverConfig{SyncThreshold: 0.3},
		},
		Admission: stream.AdmissionConfig{
			Enabled:          true,
			DegradeScanP95NS: 1, ShedScanP95NS: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(fleet, 30*time.Second)
	ts := httptest.NewServer(d.routes())
	t.Cleanup(func() {
		ts.Close()
		fleet.Close()
	})

	capture, _ := testCapture(t, 23)
	// Warm the shard's latency window. Instruments are name-registered and
	// process-global, so an earlier test in this binary may already have
	// heated shard 0's scan histogram — then this request itself sheds,
	// which is fine: either way the follow-ups below must see 503.
	warm, err := http.Post(ts.URL+"/v1/classify?session=hot-client", "application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK && warm.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming classify: status %d, want 200 or 503", warm.StatusCode)
	}
	for _, path := range []string{"/v1/classify", "/v1/stream"} {
		resp, err := http.Post(ts.URL+path+"?session=hot-client", "application/octet-stream", bytes.NewReader(capture))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s on hot shard: status %d, want 503", path, resp.StatusCode)
		}
	}
}
