// Command hideseekd is the online defense service: a daemon that accepts
// captured or live 4 MS/s I/Q streams and runs the streaming detection
// pipeline (internal/stream) over them — ZigBee frame sync, DSSS
// despreading, and the constellation-cumulant emulation defense — with
// one shared worker pool batching frames across every connection.
//
// Endpoints:
//
//	POST /v1/classify   cf32 body in, one JSON document out (all verdicts + stats)
//	POST /v1/stream     cf32 body in, NDJSON out (one verdict per line, stats trailer)
//	GET  /healthz       liveness + pool status
//	GET  /v1/obs        instrument snapshot (counters include stream.dropped_frames)
//
// With -tcp the daemon also accepts raw TCP connections carrying cf32
// bytes (an SDR pipe, netcat) and answers with NDJSON verdicts on the
// same connection.
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, in-flight
// sessions drain, the worker pool stops, and -manifest (if set) receives
// a kind=service run manifest that cmd/manifestcheck validates.
//
// Usage:
//
//	hideseekd [-addr host:port] [-tcp host:port] [-workers n] [-queue n]
//	          [-chunk n] [-pending n] [-threshold q] [-real] [-sync t]
//	          [-deadline d] [-manifest out.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/obs"
	"hideseek/internal/stream"
	"hideseek/internal/zigbee"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hideseekd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("hideseekd", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "127.0.0.1:8473", "HTTP listen address")
	tcpAddr := fs.String("tcp", "", "raw TCP listen address: cf32 in, NDJSON verdicts out (empty = disabled)")
	workers := fs.Int("workers", 0, "decode/detect worker pool width (0 = derived from GOMAXPROCS)")
	queue := fs.Int("queue", 256, "shared frame queue depth; oldest frames drop past this")
	chunk := fs.Int("chunk", 4096, "samples per ingest block")
	pending := fs.Int("pending", 64, "max in-flight frames per session before its reads block")
	threshold := fs.Float64("threshold", emulation.DefaultThreshold, "decision threshold Q")
	realEnv := fs.Bool("real", false, "real-environment statistics: mean removal + |C40| (Sec. VI-C)")
	syncThr := fs.Float64("sync", 0.3, "preamble sync correlation threshold")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request idle read/write deadline (0 = none)")
	manifest := fs.String("manifest", "", "write a kind=service run manifest here on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	engine, err := stream.NewEngine(stream.Config{
		ChunkSize:  *chunk,
		Workers:    *workers,
		QueueDepth: *queue,
		MaxPending: *pending,
		Receiver:   zigbee.ReceiverConfig{SyncThreshold: *syncThr},
		Defense: emulation.DefenseConfig{
			Threshold:  *threshold,
			RemoveMean: *realEnv,
			UseAbsC40:  *realEnv,
		},
	})
	if err != nil {
		return err
	}

	d := newDaemon(engine, *deadline)

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		engine.Close()
		return err
	}
	srv := &http.Server{
		Handler: d.routes(),
		// Request contexts descend from the signal context, so streaming
		// handlers observe shutdown and drain instead of running forever.
		BaseContext: func(net.Listener) context.Context { return sigCtx },
	}
	fmt.Fprintf(logw, "hideseekd: listening on http://%s\n", httpLn.Addr())

	var tcpLn net.Listener
	var conns sync.WaitGroup
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			httpLn.Close()
			engine.Close()
			return err
		}
		fmt.Fprintf(logw, "hideseekd: raw tcp on %s\n", tcpLn.Addr())
		go d.serveTCP(sigCtx, tcpLn, &conns)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(httpLn) }()

	select {
	case err := <-errc:
		if tcpLn != nil {
			tcpLn.Close()
			conns.Wait()
		}
		engine.Close()
		return err
	case <-sigCtx.Done():
	}

	fmt.Fprintln(logw, "hideseekd: shutting down")
	graceCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintf(logw, "hideseekd: http shutdown: %v\n", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	if tcpLn != nil {
		tcpLn.Close()
		conns.Wait()
	}
	// All sessions have drained; now the pool can stop.
	engine.Close()

	if *manifest != "" {
		m := obs.NewManifest("hideseekd", 0, engine.Workers())
		m.Kind = obs.KindService
		m.WallMS = float64(time.Since(d.start).Microseconds()) / 1000
		m.Snapshot = obs.Snap()
		if err := m.Validate(); err != nil {
			return fmt.Errorf("shutdown manifest invalid: %w", err)
		}
		if err := m.WriteFile(*manifest); err != nil {
			return err
		}
		fmt.Fprintf(logw, "hideseekd: manifest written to %s\n", *manifest)
	}
	return nil
}

// daemon binds the shared engine to the protocol handlers.
type daemon struct {
	engine   *stream.Engine
	deadline time.Duration
	start    time.Time
}

func newDaemon(e *stream.Engine, deadline time.Duration) *daemon {
	return &daemon{engine: e, deadline: deadline, start: time.Now()}
}

func (d *daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", d.handleClassify)
	mux.HandleFunc("/v1/stream", d.handleStream)
	mux.HandleFunc("/v1/obs", d.handleObs)
	mux.HandleFunc("/healthz", d.handleHealth)
	return mux
}

// classifyResponse is the /v1/classify reply: every verdict in stream
// order plus the session stats.
type classifyResponse struct {
	Verdicts []stream.Verdict `json:"verdicts"`
	Stats    stream.Stats     `json:"stats"`
}

// trailer is the final NDJSON record of a streaming response; its "stats"
// key distinguishes it from verdict records (which always carry "seq").
type trailer struct {
	Stats *stream.Stats `json:"stats,omitempty"`
	Err   string        `json:"error,omitempty"`
}

func (d *daemon) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a cf32 capture", http.StatusMethodNotAllowed)
		return
	}
	ctx := r.Context()
	rc := http.NewResponseController(w)
	// Unblock a pending body read when the daemon shuts down mid-upload.
	stopAfter := context.AfterFunc(ctx, func() { rc.SetReadDeadline(time.Now()) })
	defer stopAfter()
	// Same idle-read-deadline policy as /v1/stream: an actively uploading
	// client may take as long as it needs, only a stalled one times out.
	src := &deadlineSource{src: iq.NewReaderCF32(r.Body), refresh: func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.deadline > 0 {
			return rc.SetReadDeadline(time.Now().Add(d.deadline))
		}
		return nil
	}}
	verdicts := make([]stream.Verdict, 0)
	stats, err := d.engine.Process(ctx, src, func(v stream.Verdict) {
		verdicts = append(verdicts, v)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if d.deadline > 0 {
		rc.SetWriteDeadline(time.Now().Add(d.deadline))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(classifyResponse{Verdicts: verdicts, Stats: stats})
}

func (d *daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a cf32 stream", http.StatusMethodNotAllowed)
		return
	}
	rc := http.NewResponseController(w)
	// Full duplex lets us emit verdicts while the client is still sending
	// samples (best effort: HTTP/2 already behaves this way).
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// Unblock pending body reads and response writes when the daemon shuts
	// down (or the session is cancelled) mid-stream.
	stopAfter := context.AfterFunc(ctx, func() {
		rc.SetReadDeadline(time.Now())
		rc.SetWriteDeadline(time.Now())
	})
	defer stopAfter()
	src := &deadlineSource{src: iq.NewReaderCF32(r.Body), refresh: func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.deadline > 0 {
			return rc.SetReadDeadline(time.Now().Add(d.deadline))
		}
		return nil
	}}
	stats, err := d.engine.Process(ctx, src, func(v stream.Verdict) {
		// A write deadline per verdict: a client that streams samples but
		// never reads responses errors the session instead of blocking its
		// delivery goroutine (and the session's drain) forever.
		if d.deadline > 0 {
			rc.SetWriteDeadline(time.Now().Add(d.deadline))
		}
		if encErr := enc.Encode(v); encErr != nil {
			cancel()
			return
		}
		rc.Flush()
	})
	if d.deadline > 0 {
		rc.SetWriteDeadline(time.Now().Add(d.deadline))
	}
	t := trailer{Stats: &stats}
	if err != nil {
		t.Err = err.Error()
	}
	enc.Encode(t)
	rc.Flush()
}

func (d *daemon) handleObs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(obs.Snap())
}

// health is the /healthz document.
type health struct {
	Status         string  `json:"status"`
	UptimeMS       float64 `json:"uptime_ms"`
	Workers        int     `json:"workers"`
	ActiveSessions int     `json:"active_sessions"`
	QueueDepth     int     `json:"queue_depth"`
}

func (d *daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(health{
		Status:         "ok",
		UptimeMS:       float64(time.Since(d.start).Microseconds()) / 1000,
		Workers:        d.engine.Workers(),
		ActiveSessions: d.engine.ActiveSessions(),
		QueueDepth:     d.engine.QueueDepth(),
	})
}

// serveTCP accepts raw connections until the listener closes.
func (d *daemon) serveTCP(ctx context.Context, ln net.Listener, conns *sync.WaitGroup) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			d.serveConn(ctx, conn)
		}()
	}
}

// serveConn runs one raw-TCP session: cf32 bytes in, NDJSON verdicts out,
// a stats trailer, then close.
func (d *daemon) serveConn(ctx context.Context, conn net.Conn) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopAfter := context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Now())
		conn.SetWriteDeadline(time.Now())
	})
	defer stopAfter()
	enc := json.NewEncoder(conn)
	src := &deadlineSource{src: iq.NewReaderCF32(conn), refresh: func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.deadline > 0 {
			return conn.SetReadDeadline(time.Now().Add(d.deadline))
		}
		return nil
	}}
	stats, err := d.engine.Process(ctx, src, func(v stream.Verdict) {
		// Bound every verdict write so a peer that stops reading errors the
		// session rather than wedging its delivery goroutine.
		if d.deadline > 0 {
			conn.SetWriteDeadline(time.Now().Add(d.deadline))
		}
		if encErr := enc.Encode(v); encErr != nil {
			cancel()
		}
	})
	if d.deadline > 0 {
		conn.SetWriteDeadline(time.Now().Add(d.deadline))
	}
	t := trailer{Stats: &stats}
	if err != nil {
		t.Err = err.Error()
	}
	enc.Encode(t)
}

// deadlineSource refreshes an idle read deadline before every block so a
// stalled client cannot hold a session (and its MaxPending budget) open
// forever.
type deadlineSource struct {
	src     stream.Source
	refresh func() error
}

func (s *deadlineSource) ReadBlock(dst []complex128) (int, error) {
	if s.refresh != nil {
		if err := s.refresh(); err != nil {
			return 0, err
		}
	}
	return s.src.ReadBlock(dst)
}
