// Command hideseekd is the online defense service: a daemon that accepts
// captured or live 4 MS/s I/Q streams and runs the streaming detection
// pipeline (internal/stream) over them. Sessions are sharded across
// -shards independent engines (one worker pool + bounded queue each)
// behind a stream.Fleet; each session is pinned to one shard by its
// session key — ?session=<key> on HTTP requests, defaulting to the
// client's host — so one client's sessions share a queue and a latency
// budget. The pipeline is protocol-generic (internal/phy): -protos
// selects which victim PHYs the daemon serves (default "zigbee,lora" —
// ZigBee O-QPSK frame sync + constellation-cumulant defense, and LoRa
// CSS dechirp + off-peak-energy defense). Each session binds one
// protocol: HTTP clients pick with ?proto=<name> on /v1/classify and
// /v1/stream, raw TCP clients with an optional "#HSPROTO <name>\n"
// preamble line; unspecified sessions get the first configured protocol.
//
// With -admission each shard runs tiered admission control: under load
// new sessions are degraded (raised sync threshold, tightened in-flight
// budget; their verdicts carry "degraded":true) and past that shed at
// admission — HTTP clients get 503, raw TCP clients an error trailer —
// keeping accepted sessions' latency bounded instead of letting every
// session slowly starve.
//
// With -calib the fleet runs the online calibration stage (internal/calib):
// per-protocol session classes track rolling D² distributions, fit the
// authentic/emulated decision boundary from labeled warmup traffic
// (?calib_label=authentic|emulated on /v1/classify and /v1/stream marks a
// session's frames with operator ground truth; ?calib_class=<name> groups
// sessions into a non-default class), and monitor for drift. GET /v1/calib
// reports every class's threshold, source, fit, and drift status; PUT
// /v1/calib applies operator overrides, clears them, or re-arms warmup.
//
// Endpoints:
//
//	POST /v1/classify   cf32 body in, one JSON document out (all verdicts + stats)
//	POST /v1/stream     cf32 body in, NDJSON out (one verdict per line, stats trailer)
//	GET  /healthz       liveness: per-shard table (load + admission tier), pool
//	                    status, build identity, runtime gauges, rolling
//	                    last-60s/last-2min stage-latency windows, and the
//	                    calibration table when -calib is on
//	GET  /v1/obs        instrument snapshot (JSON; ?format=prometheus for text format)
//	GET  /metrics       Prometheus text exposition (counters, summaries,
//	                    cumulative histograms, windowed quantile gauges,
//	                    per-shard stream.shard<i>.* series)
//	GET  /v1/traces     recent per-frame span traces as NDJSON (?n=max)
//	GET  /v1/calib      online-calibration status per session class
//	PUT  /v1/calib      operator threshold override / clear / re-arm warmup
//	GET  /v1/alerts     SLO rule states (inactive/pending/firing/resolved)
//	                    plus the transition history ring
//	GET  /v1/top        fleet-wide heavy-hitter session keys by frames,
//	                    drops, sheds, and summed verdict latency (?k=max)
//
// The daemon evaluates SLO rules continuously (-slo, on by default):
// built-in objectives for verdict latency, drop ratio, shed burn rate,
// calibration drift, and GC pause tail, or a custom rules file via
// -slo-rules (one rule per line, see internal/obs/alert). Rule states
// surface on /v1/alerts, as ALERTS{alertname,severity,state} plus
// hideseek_slo_budget_remaining{rule} on /metrics, and in the shutdown
// manifest. A runtime profiler goroutine feeds go.sched_latency_ns and
// go.gc_pause_ns histograms from runtime/metrics so runtime health is
// alertable like any stream stage.
//
// With -debug-addr the daemon serves net/http/pprof on a SEPARATE mux
// (never on the service listener); bind it to loopback. Capture a CPU
// profile with:
//
//	go tool pprof "http://127.0.0.1:6060/debug/pprof/profile?seconds=10"
//
// With -tcp the daemon also accepts raw TCP connections carrying cf32
// bytes (an SDR pipe, netcat) and answers with NDJSON verdicts on the
// same connection.
//
// Every scanned frame gets a span trace (scan→sync→queue→decode→detect→
// deliver) kept in a bounded in-memory ring (-traces) and, with
// -tracefile, exported as NDJSON; Verdict.trace_id joins a verdict to
// its timeline.
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, in-flight
// sessions drain, the worker pool stops, the trace sink flushes, and
// -manifest (if set) receives a kind=service run manifest that
// cmd/manifestcheck validates.
//
// Usage:
//
//	hideseekd [-addr host:port] [-tcp host:port] [-protos list] [-shards n]
//	          [-admission] [-workers n] [-queue n] [-chunk n] [-pending n]
//	          [-threshold q] [-real] [-sync t] [-deadline d] [-manifest out.json]
//	          [-traces n] [-tracefile out.ndjson]
//	          [-calib] [-calib-warmup n] [-calib-drift-every d]
//	          [-slo] [-slo-rules file] [-slo-every d] [-topk n]
//	          [-debug-addr host:port]
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hideseek/internal/calib"
	"hideseek/internal/iq"
	"hideseek/internal/obs"
	"hideseek/internal/obs/alert"
	"hideseek/internal/phy"
	"hideseek/internal/stream"

	// Served victim-PHY plugins register themselves on import.
	_ "hideseek/internal/phy/loraphy"
	_ "hideseek/internal/phy/zigbeephy"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "hideseekd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("hideseekd", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "127.0.0.1:8473", "HTTP listen address")
	tcpAddr := fs.String("tcp", "", "raw TCP listen address: cf32 in, NDJSON verdicts out (empty = disabled)")
	protos := fs.String("protos", "zigbee,lora", "comma-separated victim protocols to serve (first is the session default)")
	shards := fs.Int("shards", 1, "independent engine shards; sessions pin to shards by session key")
	admission := fs.Bool("admission", false, "tiered admission control per shard: degrade under load, shed past that (503)")
	workers := fs.Int("workers", 0, "decode/detect worker pool width per shard (0 = derived from GOMAXPROCS)")
	queue := fs.Int("queue", 256, "shared frame queue depth; oldest frames drop past this")
	chunk := fs.Int("chunk", 4096, "samples per ingest block")
	pending := fs.Int("pending", 64, "max in-flight frames per session before its reads block")
	threshold := fs.Float64("threshold", 0, "decision threshold Q for every served protocol (0 = per-protocol default)")
	realEnv := fs.Bool("real", false, "real-environment statistics: mean removal + |C40| (Sec. VI-C)")
	syncThr := fs.Float64("sync", 0, "preamble sync correlation threshold for every served protocol (0 = per-protocol default; zigbee's daemon default is 0.3)")
	deadline := fs.Duration("deadline", 30*time.Second, "per-request idle read/write deadline (0 = none)")
	manifest := fs.String("manifest", "", "write a kind=service run manifest here on shutdown")
	traces := fs.Int("traces", 256, "per-frame span traces kept queryable at /v1/traces (0 disables tracing)")
	traceFile := fs.String("tracefile", "", "append every completed span trace as NDJSON here")
	calibOn := fs.Bool("calib", false, "online calibration: fit per-class detection thresholds from labeled warmup traffic, monitor drift (/v1/calib)")
	calibWarmup := fs.Int("calib-warmup", 0, "labeled samples per class before the boundary fits (0 = calibration default)")
	calibDriftEvery := fs.Duration("calib-drift-every", 0, "drift-evaluation throttle (0 = calibration default)")
	sloOn := fs.Bool("slo", true, "evaluate SLO rules continuously; states on /v1/alerts, ALERTS series on /metrics")
	sloRules := fs.String("slo-rules", "", "SLO rules file, one rule per line (empty = built-in defaults; see internal/obs/alert)")
	sloEvery := fs.Duration("slo-every", 0, "SLO evaluation period (0 = 1s)")
	topK := fs.Int("topk", 0, "per-shard heavy-hitter sketch capacity for /v1/top (0 = 128)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this SEPARATE listener (empty = disabled; bind loopback, e.g. 127.0.0.1:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sloRuleSet []alert.Rule
	if *sloRules != "" {
		if !*sloOn {
			return fmt.Errorf("-slo-rules requires -slo")
		}
		src, err := os.ReadFile(*sloRules)
		if err != nil {
			return err
		}
		if sloRuleSet, err = alert.ParseRules(string(src)); err != nil {
			return fmt.Errorf("-slo-rules %s: %w", *sloRules, err)
		}
	}

	var tracer *obs.Tracer
	var traceSink *os.File
	if *traceFile != "" && *traces == 0 {
		return fmt.Errorf("-tracefile requires -traces > 0")
	}
	if *traces > 0 {
		tcfg := obs.TracerConfig{Ring: *traces}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			traceSink = f
			tcfg.Sink = f
		}
		tracer = obs.NewTracer(tcfg)
	}
	closeTracer := func() {
		if err := tracer.Close(); err != nil {
			fmt.Fprintf(logw, "hideseekd: trace sink: %v\n", err)
		}
		if traceSink != nil {
			traceSink.Close()
			traceSink = nil
		}
	}

	var pipelines []*phy.Pipeline
	for _, name := range strings.Split(*protos, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		opts := phy.Options{SyncThreshold: *syncThr, Threshold: *threshold, RealEnv: *realEnv}
		if opts.SyncThreshold == 0 && name == "zigbee" {
			// The daemon has always run zigbee sync at 0.3 (below the
			// receiver's own 0.5 default) to catch weak preambles; keep that
			// operating point unless -sync overrides it.
			opts.SyncThreshold = 0.3
		}
		p, err := phy.Build(name, opts)
		if err != nil {
			closeTracer()
			return fmt.Errorf("-protos: %w (registered: %v)", err, phy.Protocols())
		}
		pipelines = append(pipelines, p)
	}
	if len(pipelines) == 0 {
		closeTracer()
		return fmt.Errorf("-protos %q selects no protocols", *protos)
	}

	var calCfg *calib.Config
	if *calibOn {
		calCfg = &calib.Config{WarmupPerClass: *calibWarmup, DriftCheckEvery: *calibDriftEvery}
	} else if *calibWarmup != 0 || *calibDriftEvery != 0 {
		closeTracer()
		return fmt.Errorf("-calib-warmup / -calib-drift-every require -calib")
	}

	fleet, err := stream.NewFleet(stream.FleetConfig{
		Config: stream.Config{
			ChunkSize:   *chunk,
			Workers:     *workers,
			QueueDepth:  *queue,
			MaxPending:  *pending,
			Pipelines:   pipelines,
			Tracer:      tracer,
			Calibration: calCfg,
		},
		Shards:    *shards,
		Admission: stream.AdmissionConfig{Enabled: *admission},
		TopK:      *topK,
	})
	if err != nil {
		closeTracer()
		return err
	}

	// The runtime profiler always runs: go.sched_latency_ns and
	// go.gc_pause_ns are first-class histograms whether or not SLO rules
	// read them.
	profiler := obs.StartRuntimeProfiler(nil, 0)

	var alerts *alert.Engine
	if *sloOn {
		alerts, err = alert.New(alert.Config{Rules: sloRuleSet, Every: *sloEvery})
		if err != nil {
			profiler.Stop()
			fleet.Close()
			closeTracer()
			return err
		}
		alerts.Start()
	}

	d := newDaemon(fleet, *deadline)
	d.tracer = tracer
	d.alerts = alerts

	// stopTelemetry halts the background evaluators: the SLO engine first
	// (no rule evaluates against a half-drained registry), then the
	// profiler, whose Stop runs a final drain so the manifest's runtime
	// histograms include the last tick.
	stopTelemetry := func() {
		alerts.Stop()
		profiler.Stop()
	}

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		stopTelemetry()
		fleet.Close()
		closeTracer()
		return err
	}

	var debugLn net.Listener
	if *debugAddr != "" {
		// pprof lives on its own mux and listener so profiling handlers are
		// never reachable through the service address.
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			httpLn.Close()
			stopTelemetry()
			fleet.Close()
			closeTracer()
			return fmt.Errorf("-debug-addr: %w", err)
		}
		dbgMux := http.NewServeMux()
		dbgMux.HandleFunc("/debug/pprof/", pprof.Index)
		dbgMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbgMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbgMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbgMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(logw, "hideseekd: pprof on http://%s/debug/pprof/\n", debugLn.Addr())
		go http.Serve(debugLn, dbgMux)
	}
	closeDebug := func() {
		if debugLn != nil {
			debugLn.Close()
		}
	}
	fmt.Fprintf(logw, "hideseekd: serving protocols %v on %d shard(s), admission control %v\n",
		fleet.Protocols(), fleet.Shards(), fleet.AdmissionEnabled())
	srv := &http.Server{
		Handler: d.routes(),
		// Request contexts descend from the signal context, so streaming
		// handlers observe shutdown and drain instead of running forever.
		BaseContext: func(net.Listener) context.Context { return sigCtx },
	}
	fmt.Fprintf(logw, "hideseekd: listening on http://%s\n", httpLn.Addr())

	var tcpLn net.Listener
	var conns sync.WaitGroup
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			httpLn.Close()
			closeDebug()
			stopTelemetry()
			fleet.Close()
			closeTracer()
			return err
		}
		fmt.Fprintf(logw, "hideseekd: raw tcp on %s\n", tcpLn.Addr())
		go d.serveTCP(sigCtx, tcpLn, &conns)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(httpLn) }()

	select {
	case err := <-errc:
		if tcpLn != nil {
			tcpLn.Close()
			conns.Wait()
		}
		closeDebug()
		stopTelemetry()
		fleet.Close()
		closeTracer()
		return err
	case <-sigCtx.Done():
	}

	fmt.Fprintln(logw, "hideseekd: shutting down")
	graceCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintf(logw, "hideseekd: http shutdown: %v\n", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	if tcpLn != nil {
		tcpLn.Close()
		conns.Wait()
	}
	// All sessions have drained; now the pools can stop and the trace sink
	// can flush — no frame will finish a trace after this point.
	closeDebug()
	stopTelemetry()
	fleet.Close()
	closeTracer()

	if *manifest != "" {
		m := obs.NewManifest("hideseekd", 0, fleet.Workers())
		m.Kind = obs.KindService
		m.Protocols = fleet.Protocols()
		m.WallMS = float64(time.Since(d.start).Microseconds()) / 1000
		m.Snapshot = d.snap()
		if err := m.Validate(); err != nil {
			return fmt.Errorf("shutdown manifest invalid: %w", err)
		}
		if err := m.WriteFile(*manifest); err != nil {
			return err
		}
		fmt.Fprintf(logw, "hideseekd: manifest written to %s\n", *manifest)
	}
	return nil
}

// daemon binds the shard fleet to the protocol handlers.
type daemon struct {
	fleet    *stream.Fleet
	tracer   *obs.Tracer   // nil when tracing is off
	alerts   *alert.Engine // nil when -slo is off
	deadline time.Duration
	start    time.Time
}

// snap is the daemon's snapshot: the registry snapshot plus the SLO
// rule states, so /metrics, /v1/obs, and the shutdown manifest all see
// the same alert view.
func (d *daemon) snap() obs.Snapshot {
	s := obs.Snap()
	if d.alerts != nil {
		s.Alerts = d.alerts.Samples()
	}
	return s
}

func newDaemon(f *stream.Fleet, deadline time.Duration) *daemon {
	return &daemon{fleet: f, deadline: deadline, start: time.Now()}
}

func (d *daemon) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", d.handleClassify)
	mux.HandleFunc("/v1/stream", d.handleStream)
	mux.HandleFunc("/v1/obs", d.handleObs)
	mux.HandleFunc("/v1/traces", d.handleTraces)
	mux.HandleFunc("/v1/calib", d.handleCalib)
	mux.HandleFunc("/v1/alerts", d.handleAlerts)
	mux.HandleFunc("/v1/top", d.handleTop)
	mux.HandleFunc("/metrics", d.handleMetrics)
	mux.HandleFunc("/healthz", d.handleHealth)
	return mux
}

// classifyResponse is the /v1/classify reply: every verdict in stream
// order plus the session stats.
type classifyResponse struct {
	Verdicts []stream.Verdict `json:"verdicts"`
	Stats    stream.Stats     `json:"stats"`
}

// trailer is the final NDJSON record of a streaming response; its "stats"
// key distinguishes it from verdict records (which always carry "seq").
type trailer struct {
	Stats *stream.Stats `json:"stats,omitempty"`
	Err   string        `json:"error,omitempty"`
}

// sessionProto resolves a request's ?proto= selector against the served
// set, so protocol typos fail with 400 before any samples are consumed
// ("" = the fleet default).
func (d *daemon) sessionProto(r *http.Request) (string, error) {
	proto := r.URL.Query().Get("proto")
	if proto == "" {
		return "", nil
	}
	for _, served := range d.fleet.Protocols() {
		if proto == served {
			return proto, nil
		}
	}
	return "", fmt.Errorf("protocol %q not served (have %v)", proto, d.fleet.Protocols())
}

// calibOptions resolves a request's calibration selectors: operator
// ground truth for warmup traffic (?calib_label=authentic|emulated) and a
// non-default session class (?calib_class=<name>). Both are no-ops when
// the daemon runs without -calib, matching the stream package's contract.
func calibOptions(r *http.Request) ([]stream.SessionOption, error) {
	var opts []stream.SessionOption
	if s := r.URL.Query().Get("calib_label"); s != "" {
		l, err := calib.ParseLabel(s)
		if err != nil {
			return nil, err
		}
		opts = append(opts, stream.WithWarmupLabel(l))
	}
	if class := r.URL.Query().Get("calib_class"); class != "" {
		opts = append(opts, stream.WithCalibClass(class))
	}
	return opts, nil
}

// sessionKey picks a request's shard-affinity key: an explicit
// ?session=<key> wins; otherwise the client host, so one client's
// sessions land on one shard and share its queue and latency budget.
func sessionKey(r *http.Request) string {
	if key := r.URL.Query().Get("session"); key != "" {
		return key
	}
	return hostOf(r.RemoteAddr)
}

// hostOf strips the port from a remote address ("" stays "" — a keyless
// session spreads round-robin).
func hostOf(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// sessionStatus maps a Process error to an HTTP status: shed-at-admission
// is backpressure (503, retry later), everything else a client error.
func sessionStatus(err error) int {
	if errors.Is(err, stream.ErrShed) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (d *daemon) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a cf32 capture", http.StatusMethodNotAllowed)
		return
	}
	proto, err := d.sessionProto(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	calOpts, err := calibOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	rc := http.NewResponseController(w)
	// Unblock a pending body read when the daemon shuts down mid-upload.
	stopAfter := context.AfterFunc(ctx, func() { rc.SetReadDeadline(time.Now()) })
	defer stopAfter()
	// Same idle-read-deadline policy as /v1/stream: an actively uploading
	// client may take as long as it needs, only a stalled one times out.
	src := &deadlineSource{src: iq.NewReaderCF32(r.Body), refresh: func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.deadline > 0 {
			return rc.SetReadDeadline(time.Now().Add(d.deadline))
		}
		return nil
	}}
	verdicts := make([]stream.Verdict, 0)
	opts := append([]stream.SessionOption{stream.WithProto(proto), stream.WithSessionKey(sessionKey(r))}, calOpts...)
	stats, err := d.fleet.Process(ctx, src, func(v stream.Verdict) {
		verdicts = append(verdicts, v)
	}, opts...)
	if err != nil {
		http.Error(w, err.Error(), sessionStatus(err))
		return
	}
	if d.deadline > 0 {
		rc.SetWriteDeadline(time.Now().Add(d.deadline))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(classifyResponse{Verdicts: verdicts, Stats: stats})
}

func (d *daemon) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a cf32 stream", http.StatusMethodNotAllowed)
		return
	}
	proto, err := d.sessionProto(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	calOpts, err := calibOptions(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rc := http.NewResponseController(w)
	// Full duplex lets us emit verdicts while the client is still sending
	// samples (best effort: HTTP/2 already behaves this way).
	_ = rc.EnableFullDuplex()
	enc := json.NewEncoder(w)
	// The 200 goes out with the first verdict (or the trailer): admission
	// rejects a session before anything is emitted, and that must still be
	// able to surface as a 503 status line.
	var headerOnce sync.Once
	writeHeader := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	// Unblock pending body reads and response writes when the daemon shuts
	// down (or the session is cancelled) mid-stream.
	stopAfter := context.AfterFunc(ctx, func() {
		rc.SetReadDeadline(time.Now())
		rc.SetWriteDeadline(time.Now())
	})
	defer stopAfter()
	src := &deadlineSource{src: iq.NewReaderCF32(r.Body), refresh: func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.deadline > 0 {
			return rc.SetReadDeadline(time.Now().Add(d.deadline))
		}
		return nil
	}}
	stats, err := d.fleet.Process(ctx, src, func(v stream.Verdict) {
		headerOnce.Do(writeHeader)
		// A write deadline per verdict: a client that streams samples but
		// never reads responses errors the session instead of blocking its
		// delivery goroutine (and the session's drain) forever.
		if d.deadline > 0 {
			rc.SetWriteDeadline(time.Now().Add(d.deadline))
		}
		if encErr := enc.Encode(v); encErr != nil {
			cancel()
			return
		}
		rc.Flush()
	}, append([]stream.SessionOption{stream.WithProto(proto), stream.WithSessionKey(sessionKey(r))}, calOpts...)...)
	if errors.Is(err, stream.ErrShed) {
		// Rejected at admission: no verdict was emitted, the header is
		// still ours to set. The body was never read (admission decides
		// before the first sample) and full duplex is on, so close the
		// connection rather than letting the server try to reuse it while
		// the client is still mid-upload.
		w.Header().Set("Connection", "close")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	headerOnce.Do(writeHeader)
	if d.deadline > 0 {
		rc.SetWriteDeadline(time.Now().Add(d.deadline))
	}
	t := trailer{Stats: &stats}
	if err != nil {
		t.Err = err.Error()
	}
	enc.Encode(t)
	rc.Flush()
}

func (d *daemon) handleObs(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		d.handleMetrics(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.snap())
}

// handleMetrics is the Prometheus scrape endpoint: the same snapshot
// /v1/obs serves, rendered in the text exposition format.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	obs.WritePrometheus(w, d.snap())
}

// alertsResponse is the GET /v1/alerts reply.
type alertsResponse struct {
	Enabled bool               `json:"enabled"`
	Rules   []alert.RuleStatus `json:"rules,omitempty"`
	History []alert.Transition `json:"history,omitempty"`
}

// handleAlerts reports every SLO rule's state machine position and the
// recent transition history.
func (d *daemon) handleAlerts(w http.ResponseWriter, r *http.Request) {
	resp := alertsResponse{Enabled: d.alerts != nil}
	if d.alerts != nil {
		st := d.alerts.Status()
		resp.Rules = st.Rules
		resp.History = st.History
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleTop reports the fleet-wide heavy-hitter session keys (?k bounds
// entries per dimension; default 10).
func (d *daemon) handleTop(w http.ResponseWriter, r *http.Request) {
	k := 10
	if s := r.URL.Query().Get("k"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "k must be a positive integer", http.StatusBadRequest)
			return
		}
		k = v
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.fleet.Top(k))
}

// handleTraces streams the most recent completed span traces as NDJSON
// (?n bounds the count; default the whole ring).
func (d *daemon) handleTraces(w http.ResponseWriter, r *http.Request) {
	if d.tracer == nil {
		http.Error(w, "tracing disabled (-traces 0)", http.StatusNotFound)
		return
	}
	max := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		max = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	d.tracer.WriteRecent(w, max)
}

// calibStatus is the GET /v1/calib reply.
type calibStatus struct {
	Enabled bool           `json:"enabled"`
	Classes []calib.Status `json:"classes,omitempty"`
}

// calibUpdate is the PUT /v1/calib body. Operations compose in precedence
// order: an override is applied first, then clear_override, then rearm —
// but a typical call carries exactly one.
type calibUpdate struct {
	// Class names the session class to operate on (required).
	Class string `json:"class"`
	// Threshold sets an operator override (outranks fitted and default).
	Threshold *float64 `json:"threshold,omitempty"`
	// ClearOverride drops the operator override.
	ClearOverride bool `json:"clear_override,omitempty"`
	// Rearm drops the fitted boundary and restarts warmup.
	Rearm bool `json:"rearm,omitempty"`
}

// handleCalib is the online-calibration admin surface: GET reports every
// session class's threshold/fit/drift status, PUT applies operator
// operations to one class.
func (d *daemon) handleCalib(w http.ResponseWriter, r *http.Request) {
	mgr := d.fleet.Calibration()
	switch r.Method {
	case http.MethodGet:
		st := calibStatus{Enabled: mgr != nil}
		if mgr != nil {
			st.Classes = mgr.Status()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	case http.MethodPut:
		if mgr == nil {
			http.Error(w, "online calibration disabled (start with -calib)", http.StatusNotFound)
			return
		}
		var up calibUpdate
		if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
			http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if up.Class == "" {
			http.Error(w, "class is required", http.StatusBadRequest)
			return
		}
		cal, ok := mgr.Lookup(up.Class)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown calibration class %q (classes appear with their first session)", up.Class), http.StatusNotFound)
			return
		}
		if up.Threshold == nil && !up.ClearOverride && !up.Rearm {
			http.Error(w, "no operation: set threshold, clear_override, or rearm", http.StatusBadRequest)
			return
		}
		if up.Threshold != nil {
			if err := cal.SetOverride(*up.Threshold); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		if up.ClearOverride {
			cal.ClearOverride()
		}
		if up.Rearm {
			cal.Rearm()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cal.Status())
	default:
		http.Error(w, "GET for status, PUT for operator operations", http.StatusMethodNotAllowed)
	}
}

// health is the /healthz document: liveness, fleet state (per-shard load
// and admission tier), build identity, runtime gauges, and the rolling
// per-stage latency windows — enough to tell what the service is and how
// it is doing right now from one probe.
type health struct {
	Status         string                       `json:"status"`
	UptimeMS       float64                      `json:"uptime_ms"`
	Protocols      []string                     `json:"protocols"`
	Shards         int                          `json:"shards"`
	Admission      bool                         `json:"admission"`
	Workers        int                          `json:"workers"`
	ActiveSessions int                          `json:"active_sessions"`
	QueueDepth     int                          `json:"queue_depth"`
	ShardTable     []stream.ShardStatus         `json:"shard_table"`
	Calibration    []calib.Status               `json:"calibration,omitempty"`
	Build          obs.BuildStats               `json:"build"`
	Runtime        obs.RuntimeStats             `json:"runtime"`
	Windows        map[string]obs.WindowedStats `json:"windows"`
}

// healthWindows names the histograms whose rolling windows /healthz
// inlines: the per-frame stage latencies and the shared queue depth.
var healthWindows = []string{
	"stream.scan_ns", "stream.decode_ns", "stream.detect_ns", "stream.queue_depth",
}

func (d *daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := obs.Snap()
	windows := make(map[string]obs.WindowedStats, len(healthWindows))
	for _, name := range healthWindows {
		if ws, ok := snap.Windows[name]; ok {
			windows[name] = ws
		}
	}
	h := health{
		Status:         "ok",
		UptimeMS:       float64(time.Since(d.start).Microseconds()) / 1000,
		Protocols:      d.fleet.Protocols(),
		Shards:         d.fleet.Shards(),
		Admission:      d.fleet.AdmissionEnabled(),
		Workers:        d.fleet.Workers(),
		ActiveSessions: d.fleet.ActiveSessions(),
		QueueDepth:     d.fleet.QueueDepth(),
		ShardTable:     d.fleet.ShardTable(),
		Build:          obs.ReadBuild(),
		Runtime:        snap.Runtime,
		Windows:        windows,
	}
	if mgr := d.fleet.Calibration(); mgr != nil {
		h.Calibration = mgr.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// serveTCP accepts raw connections until the listener closes.
func (d *daemon) serveTCP(ctx context.Context, ln net.Listener, conns *sync.WaitGroup) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			defer conn.Close()
			d.serveConn(ctx, conn)
		}()
	}
}

// protoPreamble is the optional first line of a raw TCP session selecting
// its protocol; everything after the newline is cf32 samples.
const protoPreamble = "#HSPROTO "

// sniffProto peeks at the head of a raw TCP stream for a
// "#HSPROTO <name>\n" selector line. Without one the stream is untouched
// cf32 and the session runs the engine default (the marker bytes cannot
// open a plain stream by accident without also being consumed here).
func sniffProto(br *bufio.Reader) (string, error) {
	head, err := br.Peek(len(protoPreamble))
	if err != nil || !bytes.Equal(head, []byte(protoPreamble)) {
		return "", nil // short or markerless stream: plain cf32
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("unterminated %q line", protoPreamble)
	}
	proto := strings.TrimSpace(strings.TrimPrefix(line, protoPreamble))
	if proto == "" {
		return "", fmt.Errorf("empty protocol in %q line", protoPreamble)
	}
	return proto, nil
}

// serveConn runs one raw-TCP session: an optional "#HSPROTO <name>\n"
// selector line, cf32 bytes in, NDJSON verdicts out, a stats trailer,
// then close.
func (d *daemon) serveConn(ctx context.Context, conn net.Conn) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopAfter := context.AfterFunc(ctx, func() {
		conn.SetReadDeadline(time.Now())
		conn.SetWriteDeadline(time.Now())
	})
	defer stopAfter()
	enc := json.NewEncoder(conn)
	if d.deadline > 0 {
		conn.SetReadDeadline(time.Now().Add(d.deadline))
	}
	br := bufio.NewReader(conn)
	proto, err := sniffProto(br)
	if err != nil {
		enc.Encode(trailer{Err: err.Error()})
		return
	}
	src := &deadlineSource{src: iq.NewReaderCF32(br), refresh: func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.deadline > 0 {
			return conn.SetReadDeadline(time.Now().Add(d.deadline))
		}
		return nil
	}}
	stats, err := d.fleet.Process(ctx, src, func(v stream.Verdict) {
		// Bound every verdict write so a peer that stops reading errors the
		// session rather than wedging its delivery goroutine.
		if d.deadline > 0 {
			conn.SetWriteDeadline(time.Now().Add(d.deadline))
		}
		if encErr := enc.Encode(v); encErr != nil {
			cancel()
		}
	}, stream.WithProto(proto), stream.WithSessionKey(hostOf(conn.RemoteAddr().String())))
	if d.deadline > 0 {
		conn.SetWriteDeadline(time.Now().Add(d.deadline))
	}
	t := trailer{Stats: &stats}
	if err != nil {
		t.Err = err.Error()
	}
	enc.Encode(t)
}

// deadlineSource refreshes an idle read deadline before every block so a
// stalled client cannot hold a session (and its MaxPending budget) open
// forever.
type deadlineSource struct {
	src     stream.Source
	refresh func() error
}

func (s *deadlineSource) ReadBlock(dst []complex128) (int, error) {
	if s.refresh != nil {
		if err := s.refresh(); err != nil {
			return 0, err
		}
	}
	return s.src.ReadBlock(dst)
}
