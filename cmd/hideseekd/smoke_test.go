package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hideseek/internal/obs"
)

// TestStreamSmoke is the end-to-end check behind `make stream-smoke`: it
// builds the daemon binary, boots it on loopback, classifies an
// authentic+emulated capture over HTTP, streams the same capture over raw
// TCP, checks the health and obs endpoints, then sends SIGTERM and
// validates the shutdown manifest.
func TestStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hideseekd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	manifestPath := filepath.Join(dir, "manifest.json")
	proc := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-tcp", "127.0.0.1:0",
		"-workers", "2", "-deadline", "10s",
		"-manifest", manifestPath)
	stderr, err := proc.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()

	// The daemon logs its bound addresses to stderr; keep draining the
	// pipe afterwards so later log writes cannot block the process.
	addrs := make(chan [2]string, 1)
	go func() {
		var httpAddr, tcpAddr string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hideseekd: listening on http://"); ok {
				httpAddr = rest
			}
			if rest, ok := strings.CutPrefix(line, "hideseekd: raw tcp on "); ok {
				tcpAddr = rest
			}
			if httpAddr != "" && tcpAddr != "" {
				addrs <- [2]string{httpAddr, tcpAddr}
				httpAddr, tcpAddr = "", "dup"
			}
		}
	}()
	var httpAddr, tcpAddr string
	select {
	case a := <-addrs:
		httpAddr, tcpAddr = a[0], a[1]
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report listen addresses")
	}

	capture, want := testCapture(t, 42)

	// HTTP classify: both verdicts, in order.
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/classify", httpAddr),
		"application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var cr classifyResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Verdicts) != len(want) {
		t.Fatalf("classify: %d verdicts, want %d", len(cr.Verdicts), len(want))
	}
	for i, v := range cr.Verdicts {
		if !v.Decided() || v.Attack != want[i] {
			t.Fatalf("classify verdict %d: attack=%v err=%q, want attack=%v", i, v.Attack, v.Err, want[i])
		}
	}

	// Raw TCP: send the capture, half-close, read NDJSON verdicts.
	conn, err := net.Dial("tcp", tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(capture); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	verdicts, trail := readStream(t, sc)
	conn.Close()
	if trail.Err != "" {
		t.Fatalf("tcp trailer error: %q", trail.Err)
	}
	if len(verdicts) != len(want) {
		t.Fatalf("tcp: %d verdicts, want %d", len(verdicts), len(want))
	}
	for i, v := range verdicts {
		if v.Attack != want[i] {
			t.Fatalf("tcp verdict %d: attack=%v, want %v", i, v.Attack, want[i])
		}
	}

	// Health and instrument snapshot: four frames processed by now, drop
	// counter present.
	resp, err = http.Get(fmt.Sprintf("http://%s/healthz", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var h health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz: %+v, err %v", h, err)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/v1/obs", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["stream.frames"] < 4 {
		t.Errorf("obs stream.frames = %d, want >= 4", snap.Counters["stream.frames"])
	}
	if _, ok := snap.Counters["stream.dropped_frames"]; !ok {
		t.Error("obs snapshot lacks stream.dropped_frames")
	}

	// Graceful shutdown: SIGTERM, clean exit, valid service manifest.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	m, err := obs.ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("shutdown manifest invalid: %v", err)
	}
	if m.Kind != obs.KindService {
		t.Errorf("manifest kind %q, want %q", m.Kind, obs.KindService)
	}
	if m.Counters["stream.frames"] < 4 {
		t.Errorf("manifest stream.frames = %d, want >= 4", m.Counters["stream.frames"])
	}
	if len(m.Protocols) == 0 || m.Protocols[0] != "zigbee" {
		t.Errorf("manifest protocols %v, want zigbee first", m.Protocols)
	}
}

// TestLoRaSmoke is the end-to-end check behind `make lora-smoke`: it
// boots the daemon serving both protocols, classifies an authentic +
// Wi-Lo-emulated LoRa capture over HTTP (?proto=lora), repeats it over
// raw TCP with the "#HSPROTO lora" preamble, verifies the proto-labeled
// stream metrics pass the Prometheus linter on a live scrape, and
// validates the served protocol set in the shutdown manifest.
func TestLoRaSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hideseekd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	manifestPath := filepath.Join(dir, "manifest.json")
	proc := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-tcp", "127.0.0.1:0",
		"-protos", "zigbee,lora",
		"-workers", "2", "-deadline", "10s",
		"-manifest", manifestPath)
	stderr, err := proc.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	defer proc.Process.Kill()

	addrs := make(chan [2]string, 1)
	go func() {
		var httpAddr, tcpAddr string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "hideseekd: listening on http://"); ok {
				httpAddr = rest
			}
			if rest, ok := strings.CutPrefix(line, "hideseekd: raw tcp on "); ok {
				tcpAddr = rest
			}
			if httpAddr != "" && tcpAddr != "" {
				addrs <- [2]string{httpAddr, tcpAddr}
				httpAddr, tcpAddr = "", "dup"
			}
		}
	}()
	var httpAddr, tcpAddr string
	select {
	case a := <-addrs:
		httpAddr, tcpAddr = a[0], a[1]
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report listen addresses")
	}

	capture, want := loraTestCapture(t, 57)

	// HTTP classify with ?proto=lora: authentic passes, emulated flagged.
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/classify?proto=lora", httpAddr),
		"application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var cr classifyResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Verdicts) != len(want) {
		t.Fatalf("classify: %d verdicts, want %d", len(cr.Verdicts), len(want))
	}
	for i, v := range cr.Verdicts {
		if !v.Decided() || v.Attack != want[i] || v.Proto != "lora" {
			t.Fatalf("classify verdict %d: proto=%q attack=%v err=%q, want lora attack=%v",
				i, v.Proto, v.Attack, v.Err, want[i])
		}
	}

	// Raw TCP with the protocol preamble line.
	conn, err := net.Dial("tcp", tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("#HSPROTO lora\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(capture); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	verdicts, trail := readStream(t, sc)
	conn.Close()
	if trail.Err != "" {
		t.Fatalf("tcp trailer error: %q", trail.Err)
	}
	if len(verdicts) != len(want) {
		t.Fatalf("tcp: %d verdicts, want %d", len(verdicts), len(want))
	}
	for i, v := range verdicts {
		if v.Attack != want[i] {
			t.Fatalf("tcp verdict %d: attack=%v, want %v", i, v.Attack, want[i])
		}
	}

	// Live /metrics scrape: lints clean and carries the lora-labeled
	// stream families alongside the globals.
	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	_, err = metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheus(bytes.NewReader(metrics.Bytes())); err != nil {
		t.Fatalf("/metrics fails lint: %v", err)
	}
	for _, fam := range []string{
		"hideseek_stream_frames_total",
		"hideseek_stream_lora_frames_total 4",
		"hideseek_stream_lora_sessions_total 2",
		"hideseek_stream_zigbee_frames_total 0",
	} {
		if !strings.Contains(metrics.String(), fam) {
			t.Errorf("/metrics lacks %q", fam)
		}
	}

	// Shutdown manifest records the served protocol set.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	m, err := obs.ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("shutdown manifest invalid: %v", err)
	}
	if len(m.Protocols) != 2 || m.Protocols[0] != "zigbee" || m.Protocols[1] != "lora" {
		t.Errorf("manifest protocols %v, want [zigbee lora]", m.Protocols)
	}
	if m.Counters["stream.lora.frames"] < 4 {
		t.Errorf("manifest stream.lora.frames = %d, want >= 4", m.Counters["stream.lora.frames"])
	}
}
