package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/lora"
	"hideseek/internal/phy"
	"hideseek/internal/stream"
)

// loraTestCapture renders a cf32 capture holding one authentic and one
// Wi-Lo-emulated LoRa frame.
func loraTestCapture(t *testing.T, seed int64) ([]byte, []bool) {
	t.Helper()
	auth, err := lora.NewTransmitter().TransmitPayload([]byte("hs-lora"))
	if err != nil {
		t.Fatal(err)
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Emulate(auth)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := stream.BuildCapture(rand.New(rand.NewSource(seed)), 1e-3, 500, auth, res.Emulated4M)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := iq.WriteCF32(&buf, capture); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), []bool{false, true}
}

// testDaemonProtos builds a daemon serving zigbee (default) and lora.
func testDaemonProtos(t *testing.T, workers int) (*daemon, *httptest.Server) {
	t.Helper()
	zb, err := phy.Build("zigbee", phy.Options{SyncThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	lr, err := phy.Build("lora", phy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := stream.NewFleet(stream.FleetConfig{
		Config: stream.Config{
			Workers:   workers,
			Pipelines: []*phy.Pipeline{zb, lr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(fleet, 30*time.Second)
	ts := httptest.NewServer(d.routes())
	t.Cleanup(func() {
		ts.Close()
		fleet.Close()
	})
	return d, ts
}

// TestClassifyProtoParam drives ?proto= through /v1/classify: the lora
// session must decode LoRa frames with lora-labeled verdicts, the default
// session must still be zigbee, and an unserved protocol must 400 without
// consuming the body.
func TestClassifyProtoParam(t *testing.T) {
	_, ts := testDaemonProtos(t, 2)

	capture, want := loraTestCapture(t, 9)
	resp, err := http.Post(ts.URL+"/v1/classify?proto=lora", "application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var cr classifyResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Verdicts) != len(want) {
		t.Fatalf("lora classify: %d verdicts, want %d", len(cr.Verdicts), len(want))
	}
	for i, v := range cr.Verdicts {
		if !v.Decided() || v.Attack != want[i] {
			t.Fatalf("lora verdict %d: attack=%v err=%q, want attack=%v", i, v.Attack, v.Err, want[i])
		}
		if v.Proto != "lora" {
			t.Errorf("lora verdict %d labeled %q", i, v.Proto)
		}
		if string(v.PSDU) != "hs-lora" {
			t.Errorf("lora verdict %d payload %q", i, v.PSDU)
		}
	}

	// Default (no ?proto=) stays zigbee.
	zbCapture, zbWant := testCapture(t, 6)
	resp, err = http.Post(ts.URL+"/v1/classify", "application/octet-stream", bytes.NewReader(zbCapture))
	if err != nil {
		t.Fatal(err)
	}
	cr = classifyResponse{}
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Verdicts) != len(zbWant) {
		t.Fatalf("default classify: %d verdicts, want %d", len(cr.Verdicts), len(zbWant))
	}
	for i, v := range cr.Verdicts {
		if v.Proto != "zigbee" {
			t.Errorf("default verdict %d labeled %q, want zigbee", i, v.Proto)
		}
	}

	// Unserved protocol: 400 up front.
	resp, err = http.Post(ts.URL+"/v1/classify?proto=wimax", "application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unserved proto: status %d, want 400", resp.StatusCode)
	}
}

// TestStreamProtoParam checks /v1/stream honors ?proto=lora end to end.
func TestStreamProtoParam(t *testing.T) {
	_, ts := testDaemonProtos(t, 2)
	capture, want := loraTestCapture(t, 12)
	resp, err := http.Post(ts.URL+"/v1/stream?proto=lora", "application/octet-stream", bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	verdicts, trail := readStream(t, sc)
	if trail.Err != "" {
		t.Fatalf("trailer error %q", trail.Err)
	}
	if len(verdicts) != len(want) {
		t.Fatalf("%d verdicts, want %d", len(verdicts), len(want))
	}
	for i, v := range verdicts {
		if v.Attack != want[i] {
			t.Errorf("verdict %d attack=%v, want %v", i, v.Attack, want[i])
		}
	}
}

// TestHealthzListsProtocols checks the served protocol set is visible on
// the health probe.
func TestHealthzListsProtocols(t *testing.T) {
	_, ts := testDaemonProtos(t, 2)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if len(h.Protocols) != 2 || h.Protocols[0] != "zigbee" || h.Protocols[1] != "lora" {
		t.Errorf("healthz protocols %v, want [zigbee lora]", h.Protocols)
	}
}

// TestSniffProto covers the raw-TCP protocol preamble parser.
func TestSniffProto(t *testing.T) {
	for _, tc := range []struct {
		in      string
		proto   string
		rest    string
		wantErr bool
	}{
		{"#HSPROTO lora\nDATA", "lora", "DATA", false},
		{"#HSPROTO zigbee \nX", "zigbee", "X", false},
		{"plain cf32 bytes", "", "plain cf32 bytes", false},
		{"#H", "", "#H", false}, // shorter than the marker: plain stream
		{"#HSPROTO \nX", "", "", true},
		{"#HSPROTO lora", "", "", true}, // unterminated selector line
	} {
		br := bufio.NewReader(strings.NewReader(tc.in))
		proto, err := sniffProto(br)
		if tc.wantErr {
			if err == nil {
				t.Errorf("sniffProto(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("sniffProto(%q): %v", tc.in, err)
			continue
		}
		if proto != tc.proto {
			t.Errorf("sniffProto(%q) = %q, want %q", tc.in, proto, tc.proto)
		}
		rest := make([]byte, len(tc.rest))
		n, _ := br.Read(rest)
		if string(rest[:n]) != tc.rest {
			t.Errorf("sniffProto(%q) left %q, want %q", tc.in, rest[:n], tc.rest)
		}
	}
}
