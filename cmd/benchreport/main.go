// Command benchreport runs the repository's benchmarks through
// `go test -bench -benchmem -json`, aggregates ns/op, B/op, allocs/op
// (and any custom b.ReportMetric units) per benchmark, and writes a
// schema-versioned JSON report — the machine-readable perf trajectory
// (BENCH_sync.json) that records each PR's before/after numbers.
//
// Usage:
//
//	benchreport -out BENCH_sync.json -bench 'Synchronize|ReceiveAll' -benchtime 100ms ./internal/...
//	benchreport -check BENCH_sync.json
//	benchreport -baseline BENCH_sync.json -out /tmp/new.json ./internal/...
//	benchreport -baseline BENCH_sync.json -compare /tmp/new.json
//
// -check validates an existing report against the schema (strict
// decode + obs.BenchReport.Validate), the same contract manifestcheck
// applies to run manifests.
//
// -baseline turns the run into a regression gate: after the fresh
// report is written it is compared against the committed baseline, and
// the run fails when any gated benchmark (-gate regexp, default all)
// slows down by more than -tolerance (default 25%) ns/op or allocates
// more per op at all. -compare skips running and gates an existing
// report file against the baseline instead.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"hideseek/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "BENCH_sync.json", "report file to write")
		bench     = fs.String("bench", ".", "benchmark filter regexp passed to -bench")
		benchtime = fs.String("benchtime", "100ms", "per-benchmark budget passed to -benchtime")
		count     = fs.Int("count", 1, "benchmark repetitions passed to -count")
		check     = fs.String("check", "", "validate an existing report instead of running benchmarks")
		baseline  = fs.String("baseline", "", "committed report to gate regressions against (enables compare after the run)")
		compare   = fs.String("compare", "", "existing report to gate against -baseline instead of running benchmarks")
		gate      = fs.String("gate", "", "regexp of benchmark names the regression gate covers (empty = every baseline benchmark)")
		tolerance = fs.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown before the gate fails (allocs/op allows none)")
		goBin     = fs.String("go", "go", "go tool to invoke")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchreport [flags] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check != "" {
		report, err := obs.ReadBenchReport(*check)
		if err != nil {
			return err
		}
		if err := report.Validate(); err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Fprintf(stdout, "%s: valid %s (%d benchmarks, %s/%s, %s)\n",
			*check, report.Schema, len(report.Benchmarks), report.GOOS, report.GOARCH, report.GoVersion)
		return nil
	}

	var gateRe *regexp.Regexp
	if *gate != "" {
		var err error
		if gateRe, err = regexp.Compile(*gate); err != nil {
			return fmt.Errorf("-gate: %w", err)
		}
	}

	if *compare != "" {
		if *baseline == "" {
			return fmt.Errorf("-compare requires -baseline")
		}
		old, err := loadReport(*baseline)
		if err != nil {
			return err
		}
		fresh, err := loadReport(*compare)
		if err != nil {
			return err
		}
		return compareReports(stdout, *baseline, old, *compare, fresh, gateRe, *tolerance)
	}

	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./internal/dsp", "./internal/zigbee", "./internal/stream"}
	}
	cmdArgs := append([]string{
		// -p 1 serializes the per-package test binaries: with several
		// packages in one invocation go test runs them concurrently,
		// and parallel benchmark binaries contend for CPU and inflate
		// ns/op — fatal for a report used as a regression baseline.
		"test", "-p", "1", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count), "-json",
	}, pkgs...)
	cmd := exec.Command(*goBin, cmdArgs...)
	cmd.Stderr = stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("%s %s: %w", *goBin, strings.Join(cmdArgs, " "), err)
	}

	results, err := parseTestJSON(&buf)
	if err != nil {
		return err
	}
	report := obs.NewBenchReport(*benchtime, *bench, pkgs)
	report.Benchmarks = results
	if err := report.Validate(); err != nil {
		return fmt.Errorf("refusing to write invalid report: %w", err)
	}
	if err := report.WriteFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: wrote %d benchmarks\n", *out, len(report.Benchmarks))
	if *baseline != "" {
		old, err := loadReport(*baseline)
		if err != nil {
			return err
		}
		return compareReports(stdout, *baseline, old, *out, report, gateRe, *tolerance)
	}
	return nil
}

// loadReport reads and validates a report file.
func loadReport(path string) (*obs.BenchReport, error) {
	r, err := obs.ReadBenchReport(path)
	if err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// compareReports is the regression gate: every baseline benchmark the
// gate regexp covers must exist in the fresh report, run within
// tolerance of the baseline ns/op, and allocate no more per op. It
// prints the full comparison table either way and returns an error
// listing every violation.
func compareReports(stdout io.Writer, oldPath string, old *obs.BenchReport, newPath string, fresh *obs.BenchReport, gate *regexp.Regexp, tolerance float64) error {
	index := make(map[string]obs.BenchResult, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		index[b.Package+"."+b.Name] = b
	}
	fmt.Fprintf(stdout, "comparing %s (new) against %s (baseline), tolerance %.0f%% ns/op, 0 allocs/op\n",
		newPath, oldPath, tolerance*100)
	var violations []string
	gated := 0
	for _, ob := range old.Benchmarks {
		if gate != nil && !gate.MatchString(ob.Name) {
			continue
		}
		gated++
		key := ob.Package + "." + ob.Name
		nb, ok := index[key]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from the new run", key))
			fmt.Fprintf(stdout, "  %-40s MISSING (baseline %.0f ns/op)\n", key, ob.NsPerOp)
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = nb.NsPerOp/ob.NsPerOp - 1
		}
		status := "ok"
		if ob.NsPerOp > 0 && delta > tolerance {
			status = "SLOWER"
			violations = append(violations, fmt.Sprintf("%s: ns/op %.0f → %.0f (%+.1f%%, tolerance %.0f%%)",
				key, ob.NsPerOp, nb.NsPerOp, delta*100, tolerance*100))
		}
		if nb.AllocsPerOp > ob.AllocsPerOp {
			status = "ALLOCS"
			violations = append(violations, fmt.Sprintf("%s: allocs/op %.1f → %.1f (any increase fails)",
				key, ob.AllocsPerOp, nb.AllocsPerOp))
		}
		fmt.Fprintf(stdout, "  %-40s %10.0f → %10.0f ns/op (%+6.1f%%)  %5.1f → %5.1f allocs/op  %s\n",
			key, ob.NsPerOp, nb.NsPerOp, delta*100, ob.AllocsPerOp, nb.AllocsPerOp, status)
	}
	if gated == 0 {
		return fmt.Errorf("regression gate matched no baseline benchmarks")
	}
	if len(violations) > 0 {
		return fmt.Errorf("bench regression gate failed (%d):\n  %s", len(violations), strings.Join(violations, "\n  "))
	}
	fmt.Fprintf(stdout, "gate passed: %d benchmark(s) within tolerance\n", gated)
	return nil
}

// testEvent is the subset of the `go test -json` (test2json) event
// stream benchreport consumes.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// parseTestJSON extracts benchmark result lines from a test2json event
// stream. A single result line reaches test2json in several Output
// chunks (the benchmark name is echoed before the run, the metrics
// after), so each package's output is reassembled in full before being
// split into lines. Repetitions of one benchmark (-count > 1) are
// averaged.
func parseTestJSON(r io.Reader) ([]obs.BenchResult, error) {
	var pkgOrder []string
	outputs := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("malformed test2json event: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := outputs[ev.Package]
		if !ok {
			b = &strings.Builder{}
			outputs[ev.Package] = b
			pkgOrder = append(pkgOrder, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	type agg struct {
		obs.BenchResult
		runs int
	}
	var order []string
	byKey := make(map[string]*agg)
	for _, pkg := range pkgOrder {
		for _, line := range strings.Split(outputs[pkg].String(), "\n") {
			res, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			res.Package = pkg
			key := pkg + "." + res.Name
			a, seen := byKey[key]
			if !seen {
				a = &agg{BenchResult: res, runs: 1}
				byKey[key] = a
				order = append(order, key)
				continue
			}
			a.Iterations += res.Iterations
			a.NsPerOp += res.NsPerOp
			a.BytesPerOp += res.BytesPerOp
			a.AllocsPerOp += res.AllocsPerOp
			for k, v := range res.Extra {
				if a.Extra == nil {
					a.Extra = make(map[string]float64)
				}
				a.Extra[k] += v
			}
			a.runs++
		}
	}
	out := make([]obs.BenchResult, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		if a.runs > 1 {
			n := float64(a.runs)
			a.NsPerOp /= n
			a.BytesPerOp /= n
			a.AllocsPerOp /= n
			for k := range a.Extra {
				a.Extra[k] /= n
			}
		}
		out = append(out, a.BenchResult)
	}
	return out, nil
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkSynchronize-4   9253   119748 ns/op   0 B/op   0 allocs/op
//
// returning ok=false for non-benchmark output. Value/unit pairs beyond
// the standard three land in Extra (custom b.ReportMetric units).
func parseBenchLine(line string) (obs.BenchResult, bool, error) {
	var res obs.BenchResult
	line = strings.TrimSuffix(line, "\n")
	if !strings.HasPrefix(line, "Benchmark") {
		return res, false, nil
	}
	fields := strings.Fields(line)
	// A result line is "Name iterations {value unit}..."; other
	// Benchmark-prefixed output (e.g. the bare name test2json echoes
	// before results) has no numeric second field.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return res, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return res, false, nil
	}
	name := fields[0]
	res.Procs = 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			res.Procs = p
			name = name[:i]
		}
	}
	res.Name = strings.TrimPrefix(name, "Benchmark")
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return res, false, fmt.Errorf("benchmark line %q: bad value %q", line, fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	return res, true, nil
}
