package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hideseek/internal/obs"
)

func TestParseBenchLine(t *testing.T) {
	res, ok, err := parseBenchLine("BenchmarkSynchronize-4   \t    9253\t    119748 ns/op\t       0 B/op\t       0 allocs/op\n")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if res.Name != "Synchronize" || res.Procs != 4 || res.Iterations != 9253 {
		t.Errorf("parsed %+v", res)
	}
	if res.NsPerOp != 119748 || res.BytesPerOp != 0 || res.AllocsPerOp != 0 {
		t.Errorf("parsed metrics %+v", res)
	}

	// Custom ReportMetric units land in Extra.
	res, ok, err = parseBenchLine("BenchmarkStreamScan-2 10 5000000 ns/op 1234 scan-p50-ns 5678 scan-p95-ns 0 B/op 3 allocs/op\n")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if res.Extra["scan-p50-ns"] != 1234 || res.Extra["scan-p95-ns"] != 5678 {
		t.Errorf("extra metrics %+v", res.Extra)
	}
	if res.AllocsPerOp != 3 {
		t.Errorf("allocs %v", res.AllocsPerOp)
	}

	// GOMAXPROCS=1 benchmarks have no -N suffix.
	res, ok, _ = parseBenchLine("BenchmarkFFT64 1000 850 ns/op\n")
	if !ok || res.Name != "FFT64" || res.Procs != 1 {
		t.Errorf("no-suffix parse: ok=%v %+v", ok, res)
	}

	// Non-result Benchmark output (the bare name echo) is skipped.
	if _, ok, _ = parseBenchLine("BenchmarkSynchronize\n"); ok {
		t.Error("bare benchmark name parsed as a result")
	}
	if _, ok, _ = parseBenchLine("ok  \thideseek/internal/dsp\t1.2s\n"); ok {
		t.Error("non-benchmark line parsed as a result")
	}
}

func TestParseTestJSON(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"start","Package":"hideseek/internal/dsp"}`,
		`{"Action":"output","Package":"hideseek/internal/dsp","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"hideseek/internal/dsp","Output":"BenchmarkCorrelatorFFT\n"}`,
		`{"Action":"output","Package":"hideseek/internal/dsp","Output":"BenchmarkCorrelatorFFT-4 100 587155 ns/op 0 B/op 0 allocs/op\n"}`,
		`{"Action":"output","Package":"hideseek/internal/zigbee","Output":"BenchmarkSynchronize-4 200 119748 ns/op 4 B/op 0 allocs/op\n"}`,
		`{"Action":"pass","Package":"hideseek/internal/dsp"}`,
	}, "\n")
	results, err := parseTestJSON(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	if results[0].Package != "hideseek/internal/dsp" || results[0].Name != "CorrelatorFFT" {
		t.Errorf("result 0: %+v", results[0])
	}
	if results[1].Name != "Synchronize" || results[1].NsPerOp != 119748 {
		t.Errorf("result 1: %+v", results[1])
	}
}

// TestParseTestJSONSplitOutputEvents pins the real test2json shape: the
// benchmark name is flushed as its own Output event (no trailing
// newline) while it runs, and the metrics arrive in a later event.
func TestParseTestJSONSplitOutputEvents(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"hideseek/internal/zigbee","Output":"BenchmarkSynchronize-4    \t"}`,
		`{"Action":"output","Package":"hideseek/internal/dsp","Output":"BenchmarkCorrelatorFFT-4   \t"}`,
		`{"Action":"output","Package":"hideseek/internal/dsp","Output":"    2042\t    587155 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
		`{"Action":"output","Package":"hideseek/internal/zigbee","Output":"    9253\t    119748 ns/op\t       0 B/op\t       0 allocs/op\n"}`,
	}, "\n")
	results, err := parseTestJSON(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(results), results)
	}
	if results[0].Name != "Synchronize" || results[0].Iterations != 9253 || results[0].NsPerOp != 119748 {
		t.Errorf("result 0: %+v", results[0])
	}
	if results[1].Name != "CorrelatorFFT" || results[1].Iterations != 2042 || results[1].NsPerOp != 587155 {
		t.Errorf("result 1: %+v", results[1])
	}
}

func TestParseTestJSONAveragesRepetitions(t *testing.T) {
	stream := strings.Join([]string{
		`{"Action":"output","Package":"p","Output":"BenchmarkX-1 10 100 ns/op\n"}`,
		`{"Action":"output","Package":"p","Output":"BenchmarkX-1 10 300 ns/op\n"}`,
	}, "\n")
	results, err := parseTestJSON(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].NsPerOp != 200 || results[0].Iterations != 20 {
		t.Fatalf("averaged %+v", results)
	}
}

func TestCheckMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	report := obs.NewBenchReport("100ms", ".", []string{"./x"})
	report.Benchmarks = []obs.BenchResult{{Package: "p", Name: "X", Procs: 1, Iterations: 10, NsPerOp: 5}}
	if err := report.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-check", path}, &out, &errOut); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	if !strings.Contains(out.String(), "valid") {
		t.Errorf("check output %q", out.String())
	}

	report.Benchmarks = nil
	bad := filepath.Join(dir, "bad.json")
	if err := report.WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", bad}, &out, &errOut); err == nil {
		t.Error("empty report accepted")
	}
	if err := run([]string{"-check", filepath.Join(dir, "missing.json")}, &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
}
