// Command ctcattack runs the CTC waveform emulation attack end to end on a
// generated ZigBee frame: it transmits the frame on the simulated ZigBee
// PHY, emulates the observed waveform through the WiFi OFDM pipeline, and
// reports emulation fidelity plus the victim receiver's verdict.
//
// Usage:
//
//	ctcattack [-payload text] [-snr dB] [-receiver usrp|cc26x2r1|hard] [-oncarrier] [-csma duty] [-out file.cf32] [-seed n]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/zigbee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctcattack:", err)
		os.Exit(1)
	}
}

func run() error {
	payload := flag.String("payload", "00000", "APP-layer payload the ZigBee gateway sends")
	snr := flag.Float64("snr", 17, "AWGN SNR in dB on the attacker→victim link")
	receiver := flag.String("receiver", "usrp", "victim receiver model: usrp, cc26x2r1, or hard")
	onCarrier := flag.Bool("oncarrier", false, "radiate from the 2440 MHz WiFi center (Sec. V-A-4) instead of baseband")
	csmaDuty := flag.Float64("csma", -1, "run CSMA/CA against a gateway with this duty cycle (0..1) before striking")
	out := flag.String("out", "", "write the emulated 20 MS/s waveform to this file (.cf32 or .csv) for SDR replay")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	mode, err := receiverMode(*receiver)
	if err != nil {
		return err
	}

	// Step 1 — channel listening: the gateway transmits, the attacker
	// records the waveform.
	tx := zigbee.NewTransmitter()
	observed, err := tx.TransmitPSDU([]byte(*payload))
	if err != nil {
		return err
	}
	fmt.Printf("observed ZigBee waveform: %d samples at 4 MS/s (payload %q)\n", len(observed), *payload)

	// Step 2 — waveform emulation.
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		return err
	}
	res, err := em.Emulate(observed)
	if err != nil {
		return err
	}
	nmse, err := res.TailNMSE()
	if err != nil {
		return err
	}
	fmt.Printf("emulated: %d WiFi symbols, kept FFT bins %v, α = %.4f\n", res.NumSegments, res.Bins, res.Alphas[0])
	fmt.Printf("tail NMSE (3.2 µs regions): %.4f, total QAM quantization error: %.2f\n", nmse, res.QuantError)

	if *out != "" {
		if err := writeWaveform(*out, res.Emulated20M); err != nil {
			return err
		}
		fmt.Printf("emulated waveform written to %s (%d samples at 20 MS/s)\n", *out, len(res.Emulated20M))
	}

	victimInput := res.Emulated4M
	if *onCarrier {
		victimInput, err = emulation.ReceiveAtZigBee(emulation.OnCarrierWaveform(res.Emulated20M))
		if err != nil {
			return err
		}
		fmt.Println("radiating at 2440 MHz; victim front end mixes down from 2435 MHz")
	}

	rng := rand.New(rand.NewSource(*seed))

	// Step 2.5 — channel access (Sec. IV-B): the attacker confirms the
	// ZigBee devices are quiet before transmitting.
	if *csmaDuty >= 0 {
		if *csmaDuty > 1 {
			return fmt.Errorf("csma duty cycle %v outside [0, 1]", *csmaDuty)
		}
		medium := zigbee.PeriodicTraffic{PeriodUs: 5000, BusyUs: *csmaDuty * 5000}
		access, err := zigbee.PerformCSMA(zigbee.CSMAConfig{}, medium, 0, rng)
		if err != nil {
			return err
		}
		if !access.Success {
			fmt.Printf("CSMA/CA: channel busy after %d backoffs (%.0f µs) — strike aborted\n",
				access.Backoffs, access.DelayUs)
			return nil
		}
		fmt.Printf("CSMA/CA: channel clear after %.0f µs (%d backoffs)\n", access.DelayUs, access.Backoffs)
	}

	// Step 3 — victim reception over AWGN.
	ch, err := channel.NewAWGN(*snr, rng)
	if err != nil {
		return err
	}
	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{Mode: mode, SyncThreshold: 0.3})
	if err != nil {
		return err
	}
	rec, err := rx.Receive(ch.Apply(victimInput))
	if err != nil {
		fmt.Printf("victim (%s) at %g dB: frame REJECTED (%v)\n", *receiver, *snr, err)
		return nil
	}
	fmt.Printf("victim (%s) at %g dB: frame ACCEPTED, decoded PSDU %q\n", *receiver, *snr, rec.PSDU)
	hist := emulation.ChipDistanceHistogramFromResults(rec.Results)
	fmt.Printf("chip Hamming distances: %v\n", hist)
	if string(rec.PSDU) == *payload {
		fmt.Println("attack SUCCEEDED: the victim accepted the attacker's control message")
	} else {
		fmt.Println("attack FAILED: decoded payload differs")
	}
	return nil
}

// writeWaveform saves samples in the format implied by the extension.
func writeWaveform(path string, samples []complex128) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		return iq.WriteCSV(f, samples)
	}
	return iq.WriteCF32(f, samples)
}

func receiverMode(name string) (zigbee.DespreadMode, error) {
	switch name {
	case "usrp":
		return zigbee.FMDiscriminator, nil
	case "cc26x2r1":
		return zigbee.SoftCorrelation, nil
	case "hard":
		return zigbee.HardThreshold, nil
	default:
		return 0, fmt.Errorf("unknown receiver %q (want usrp, cc26x2r1, or hard)", name)
	}
}
