// Command manifestcheck validates a run manifest written by
// `experiments -manifest` or flushed by `hideseekd` on shutdown: strict
// JSON decode (unknown fields fail) plus the schema invariants in
// obs.Manifest.Validate. CI runs it against a fresh manifest so
// writer/schema drift is caught at merge time.
//
// Usage:
//
//	manifestcheck <manifest.json>
package main

import (
	"fmt"
	"os"

	"hideseek/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck <manifest.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	m, err := obs.ReadManifest(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "manifestcheck:", err)
		os.Exit(1)
	}
	if err := m.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "manifestcheck:", err)
		os.Exit(1)
	}
	if m.Kind == obs.KindService {
		fmt.Printf("ok: %s — %s service, %.0f ms wall, %d counters, %d timers\n",
			path, m.Command, m.WallMS, len(m.Counters), len(m.Timers))
		return
	}
	fmt.Printf("ok: %s — %s, %d experiments, %d trials, %d timers\n",
		path, m.Command, len(m.Experiments), m.TrialsTotal, len(m.Timers))
}
