// Command manifestcheck validates the repo's machine-readable records:
// run manifests written by `experiments -manifest` or flushed by
// `hideseekd` on shutdown, and bench reports written by `benchreport`
// (BENCH_*.json). The file's "schema" field selects the validator;
// both paths use strict JSON decode (unknown fields fail) plus the
// schema invariants in obs. CI runs it against fresh files so
// writer/schema drift is caught at merge time.
//
// Usage:
//
//	manifestcheck <manifest.json | bench-report.json> [more.json ...]
//
// Every argument is validated; the run fails on the first invalid file,
// so CI can check a whole artifact set (BENCH_sync.json BENCH_stream.json
// manifest.json) in one invocation.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"hideseek/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck <manifest.json | bench-report.json> [more.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		summary, err := check(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "manifestcheck:", err)
			os.Exit(1)
		}
		fmt.Println(summary)
	}
}

// check validates path and returns the one-line success summary. The
// schema field is sniffed first so the right strict decoder runs; an
// unknown schema is an error, not a silent pass.
func check(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	schema, err := sniffSchema(data)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	switch schema {
	case obs.ManifestSchema:
		m, err := obs.DecodeManifest(data)
		if err != nil {
			return "", err
		}
		if err := m.Validate(); err != nil {
			return "", err
		}
		if m.Kind == obs.KindService {
			summary := fmt.Sprintf("ok: %s — %s service, protocols %v, %.0f ms wall, %d counters, %d timers",
				path, m.Command, m.Protocols, m.WallMS, len(m.Counters), len(m.Timers))
			if s := alertSummary(m.Alerts); s != "" {
				summary += ", alerts: " + s
			}
			return summary, nil
		}
		return fmt.Sprintf("ok: %s — %s, %d experiments, %d trials, %d timers",
			path, m.Command, len(m.Experiments), m.TrialsTotal, len(m.Timers)), nil
	case obs.BenchReportSchema:
		r, err := obs.DecodeBenchReport(data)
		if err != nil {
			return "", err
		}
		if err := r.Validate(); err != nil {
			return "", err
		}
		return fmt.Sprintf("ok: %s — bench report, %s/%s %s, %d benchmarks",
			path, r.GOOS, r.GOARCH, r.GoVersion, len(r.Benchmarks)), nil
	default:
		return "", fmt.Errorf("%s: unknown schema %q (want %q or %q)",
			path, schema, obs.ManifestSchema, obs.BenchReportSchema)
	}
}

// alertSummary renders a service manifest's SLO rule states, calling
// out every rule that fired during the run ("" when no alert engine
// ran).
func alertSummary(alerts []obs.AlertSample) string {
	if len(alerts) == 0 {
		return ""
	}
	fired := 0
	var firedNames string
	for _, a := range alerts {
		if a.FiredTotal > 0 {
			if fired > 0 {
				firedNames += " "
			}
			firedNames += fmt.Sprintf("%s(%s,fired=%d)", a.Name, a.State, a.FiredTotal)
			fired++
		}
	}
	if fired == 0 {
		return fmt.Sprintf("%d rules, none fired", len(alerts))
	}
	return fmt.Sprintf("%d rules, %d fired: %s", len(alerts), fired, firedNames)
}

// sniffSchema extracts just the "schema" field to dispatch on; full
// strict decoding happens in the schema-specific validator.
func sniffSchema(data []byte) (string, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("not a JSON document: %w", err)
	}
	if probe.Schema == "" {
		return "", fmt.Errorf("no schema field")
	}
	return probe.Schema, nil
}
