package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hideseek/internal/obs"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func validManifest(t *testing.T) string {
	t.Helper()
	m := obs.NewManifest("test", 1, 2)
	m.Experiments = []obs.ExperimentStats{{Name: "exp", WallMS: 5, Trials: 10, TrialsPerSec: 2000}}
	m.TrialsTotal = 10
	m.Timers = map[string]obs.TimerStats{
		"a": {Count: 1}, "b": {Count: 1}, "c": {Count: 1},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func validBenchReport(t *testing.T) string {
	t.Helper()
	r := obs.NewBenchReport("100x", "BenchmarkStreamScan", []string{"./internal/stream"})
	r.Benchmarks = []obs.BenchResult{{
		Package: "hideseek/internal/stream", Name: "BenchmarkStreamScan-8",
		Procs: 8, Iterations: 100, NsPerOp: 123456,
	}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckManifest(t *testing.T) {
	summary, err := check(validManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "1 experiments") || !strings.Contains(summary, "10 trials") {
		t.Errorf("unexpected summary %q", summary)
	}
}

func TestCheckBenchReport(t *testing.T) {
	summary, err := check(validBenchReport(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "bench report") || !strings.Contains(summary, "1 benchmarks") {
		t.Errorf("unexpected summary %q", summary)
	}
}

func TestCheckCommittedBenchBaseline(t *testing.T) {
	// The committed perf baselines must stay valid under the strict
	// decoder: the sync-path micro-benches and the fleet soak report.
	for _, name := range []string{"../../BENCH_sync.json", "../../BENCH_stream.json"} {
		if _, err := os.Stat(name); err != nil {
			t.Skipf("no committed baseline %s", name)
		}
		if _, err := check(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckRejectsUnknownField(t *testing.T) {
	data, err := os.ReadFile(validBenchReport(t))
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), "\"benchtime\"", "\"surprise\": 1, \"benchtime\"", 1)
	if _, err := check(writeTemp(t, "bad.json", mutated)); err == nil {
		t.Fatal("unknown field passed strict decode")
	}
}

func TestCheckRejectsUnknownSchema(t *testing.T) {
	path := writeTemp(t, "odd.json", `{"schema": "hideseek.other/v9"}`)
	if _, err := check(path); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("err = %v, want unknown schema", err)
	}
}

func TestCheckRejectsMissingSchema(t *testing.T) {
	path := writeTemp(t, "none.json", `{"command": "x"}`)
	if _, err := check(path); err == nil || !strings.Contains(err.Error(), "no schema") {
		t.Fatalf("err = %v, want no schema field", err)
	}
}
