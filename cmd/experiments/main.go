// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII). Each subcommand prints the corresponding markdown
// table; -csv dumps the experiment's series, and the subcommand set is the
// sim package's experiment registry (run `experiments list` to see it).
//
// Usage:
//
//	experiments <subcommand> [flags]
//
// Beyond the per-experiment flags (-seed, -trials, -csv, -workers), the
// telemetry flags never touch stdout: -manifest writes a JSON run manifest,
// -cpuprofile/-memprofile write pprof profiles, and -progress reports each
// finished experiment on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hideseek/internal/emulation"
	"hideseek/internal/obs"
	"hideseek/internal/runner"
	"hideseek/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// subcommandNames lists every dispatchable subcommand: the registry in
// canonical order plus the two meta commands.
func subcommandNames() []string {
	reg := sim.Registry()
	names := make([]string, 0, len(reg)+2)
	for _, e := range reg {
		names = append(names, e.Name)
	}
	return append(names, "all", "list")
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: experiments <subcommand> [flags]; subcommands: %s",
			strings.Join(subcommandNames(), " "))
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 0, "override trial/sample count (0 = experiment default)")
	csvPath := fs.String("csv", "", "write figure series to this CSV file")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines per sweep (results are identical at any count)")
	manifestPath := fs.String("manifest", "", "write a JSON run manifest (seed, timings, instrument snapshot) to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	progress := fs.Bool("progress", false, "report each finished experiment on stderr")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	if cmd == "list" {
		for _, e := range sim.Registry() {
			fmt.Fprintf(stdout, "%-22s %s\n", e.Name, e.Desc)
		}
		fmt.Fprintf(stdout, "%-22s %s\n", "all", "run every experiment above in order")
		return nil
	}

	runner.SetDefaultWorkers(*workers)
	effective := runner.DefaultWorkers()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	start := time.Now()
	trialsBefore := runner.TrialsExecuted()
	defer func() {
		elapsed := time.Since(start)
		executed := runner.TrialsExecuted() - trialsBefore
		if executed > 0 {
			// stderr, so table output stays byte-identical across -workers.
			fmt.Fprintf(stderr, "— %d trials in %s (%.0f trials/s, %d workers)\n",
				executed, elapsed.Round(time.Millisecond),
				float64(executed)/elapsed.Seconds(), effective)
		}
	}()

	var stats []obs.ExperimentStats
	runExp := func(exp sim.Experiment, csvPath string) error {
		expStart := time.Now()
		expBefore := runner.TrialsExecuted()
		res, err := exp.Run(sim.Config{Seed: *seed, Trials: *trials})
		if err != nil {
			return err
		}
		if tab, ok := res.(sim.Tabler); ok {
			for _, t := range tab.Tables() {
				fmt.Fprintln(stdout, t.Markdown())
			}
		} else {
			fmt.Fprintln(stdout, res.Render().Markdown())
		}
		if !exp.OmitFooter {
			fmt.Fprintf(stdout, "(defense default Q = %g)\n\n", emulation.DefaultThreshold)
		}
		if csvPath != "" {
			csv, err := sim.ResultCSV(res)
			if err != nil {
				return fmt.Errorf("rendering CSV: %w", err)
			}
			if csv != "" {
				if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
					return fmt.Errorf("writing CSV: %w", err)
				}
				fmt.Fprintf(stdout, "series written to %s\n", csvPath)
			}
		}
		elapsed := time.Since(expStart)
		executed := runner.TrialsExecuted() - expBefore
		st := obs.ExperimentStats{
			Name:   exp.Name,
			WallMS: float64(elapsed) / float64(time.Millisecond),
			Trials: executed,
		}
		if executed > 0 && elapsed > 0 {
			st.TrialsPerSec = float64(executed) / elapsed.Seconds()
		}
		stats = append(stats, st)
		if *progress {
			fmt.Fprintf(stderr, "· %s: %d trials in %s\n",
				exp.Name, executed, elapsed.Round(time.Millisecond))
		}
		return nil
	}

	if cmd == "all" {
		for _, exp := range sim.Registry() {
			if err := runExp(exp, ""); err != nil {
				return fmt.Errorf("%s: %w", exp.Name, err)
			}
		}
	} else {
		exp, ok := sim.Lookup(cmd)
		if !ok {
			return fmt.Errorf("unknown subcommand %q; subcommands: %s",
				cmd, strings.Join(subcommandNames(), " "))
		}
		if err := runExp(exp, *csvPath); err != nil {
			return err
		}
	}

	if *manifestPath != "" {
		m := obs.NewManifest(cmd, *seed, effective)
		m.Experiments = stats
		m.TrialsTotal = runner.TrialsExecuted() - trialsBefore
		elapsed := time.Since(start)
		m.WallMS = float64(elapsed) / float64(time.Millisecond)
		if m.TrialsTotal > 0 && elapsed > 0 {
			m.TrialsPerSec = float64(m.TrialsTotal) / elapsed.Seconds()
		}
		m.Snapshot = obs.Snap()
		if err := m.Validate(); err != nil {
			return fmt.Errorf("manifest: %w", err)
		}
		if err := m.WriteFile(*manifestPath); err != nil {
			return err
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("mem profile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("mem profile: %w", err)
		}
		f.Close()
	}
	return nil
}
