// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII). Each subcommand prints the corresponding markdown
// table; figure subcommands additionally accept -csv to dump the plotted
// series.
//
// Usage:
//
//	experiments <subcommand> [flags]
//
// Subcommands: table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 table4
// fig12 fig14 table5 ablation-subcarriers ablation-alpha ablation-source
// ablation-samples ablation-interp ablation-coarse spectrum accuracy
// session roc evasion amc csma all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hideseek/internal/emulation"
	"hideseek/internal/runner"
	"hideseek/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: experiments <subcommand> [flags]; see -help")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	trials := fs.Int("trials", 0, "override trial/sample count (0 = experiment default)")
	csvPath := fs.String("csv", "", "write figure series to this CSV file")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines per sweep (results are identical at any count)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	runner.SetDefaultWorkers(*workers)
	effective := runner.DefaultWorkers()

	start := time.Now()
	trialsBefore := runner.TrialsExecuted()
	defer func() {
		elapsed := time.Since(start)
		executed := runner.TrialsExecuted() - trialsBefore
		if executed > 0 {
			// stderr, so table output stays byte-identical across -workers.
			fmt.Fprintf(os.Stderr, "— %d trials in %s (%.0f trials/s, %d workers)\n",
				executed, elapsed.Round(time.Millisecond),
				float64(executed)/elapsed.Seconds(), effective)
		}
	}()

	switch cmd {
	case "all":
		for _, sub := range []string{
			"table1", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig11", "table4", "fig12", "fig14", "table5",
			"ablation-subcarriers", "ablation-alpha", "ablation-source", "ablation-samples",
			"ablation-interp", "ablation-coarse", "spectrum", "accuracy", "session", "adaptive", "coded",
			"roc", "evasion", "amc", "csma",
		} {
			if err := runOne(sub, *seed, *trials, ""); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
		return nil
	default:
		return runOne(cmd, *seed, *trials, *csvPath)
	}
}

func runOne(cmd string, seed int64, trials int, csvPath string) error {
	or := func(def int) int {
		if trials > 0 {
			return trials
		}
		return def
	}
	var (
		table *sim.Table
		csv   string
		err   error
	)
	switch cmd {
	case "table1":
		var res *sim.Table1Result
		res, err = sim.Table1([]byte("000017"), 6, 3)
		if err == nil {
			table = res.Render()
		}
	case "table2":
		var res *sim.Table2Result
		res, err = sim.Table2(seed, []float64{7, 9, 11, 13, 15, 17}, or(1000))
		if err == nil {
			table = res.Render()
		}
	case "fig5":
		var res *sim.Fig5Result
		res, err = sim.Fig5(0)
		if err == nil {
			table = res.Render()
			csv, err = res.SeriesCSV()
		}
	case "fig6":
		var res *sim.Fig6Result
		res, err = sim.Fig6(seed, 17)
		if err == nil {
			table = res.Render()
			csv = res.PointsCSV()
		}
	case "fig7":
		var res *sim.Fig7Result
		res, err = sim.Fig7(or(100))
		if err == nil {
			table = res.Render()
		}
	case "fig8":
		var res *sim.Fig8Result
		res, err = sim.Fig8(seed, 17)
		if err == nil {
			table = res.Render()
		}
	case "fig9":
		var res *sim.Fig9Result
		res, err = sim.Fig9()
		if err == nil {
			table = res.Render()
		}
	case "fig10", "fig11":
		var res *sim.CumulantSweepResult
		res, err = sim.CumulantSweep(seed, []float64{3, 5, 7, 9, 11, 13, 15, 17, 19}, or(100))
		if err == nil {
			if cmd == "fig10" {
				table = res.RenderC42()
			} else {
				table = res.RenderC40()
			}
		}
	case "table4":
		var res *sim.Table4Result
		res, err = sim.Table4(seed, []float64{7, 12, 17}, or(50))
		if err == nil {
			table = res.Render()
		}
	case "fig12":
		var res *sim.Fig12Result
		res, err = sim.Fig12(seed, []float64{11, 14, 17}, or(50), or(50))
		if err == nil {
			table = res.Render()
		}
	case "fig14":
		budget := sim.DefaultLinkBudget()
		distances := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		for _, radio := range []sim.RadioConfig{sim.USRPReceiver(), sim.CC26x2R1Receiver()} {
			var res *sim.Fig14Result
			res, err = sim.Fig14(seed, radio, budget, distances, or(100))
			if err != nil {
				return err
			}
			fmt.Println(res.Render().Markdown())
		}
		return nil
	case "table5":
		var res *sim.Table5Result
		res, err = sim.Table5(seed, sim.DefaultLinkBudget(), []float64{1, 2, 3, 4, 5, 6}, or(100))
		if err == nil {
			table = res.Render()
		}
	case "ablation-subcarriers":
		var res *sim.AblationSubcarriersResult
		res, err = sim.AblationSubcarriers(seed, []int{3, 5, 7, 9, 11, 13}, 13, or(200))
		if err == nil {
			table = res.Render()
		}
	case "ablation-alpha":
		var res *sim.AblationAlphaResult
		res, err = sim.AblationAlpha()
		if err == nil {
			table = res.Render()
		}
	case "ablation-source":
		var res *sim.AblationDefenseSourceResult
		res, err = sim.AblationDefenseSource(seed, 15, or(50))
		if err == nil {
			table = res.Render()
		}
	case "ablation-samples":
		var res *sim.AblationSampleCountResult
		res, err = sim.AblationSampleCount(seed, []int{128, 256, 384, 512, 704}, 15, or(50))
		if err == nil {
			table = res.Render()
		}
	case "spectrum":
		var res *sim.SpectrumResult
		res, err = sim.Spectrum([]byte("0000000017"))
		if err == nil {
			table = res.Render()
		}
	case "ablation-interp":
		var res *sim.AblationInterpolationResult
		res, err = sim.AblationInterpolation()
		if err == nil {
			table = res.Render()
		}
	case "ablation-coarse":
		var res *sim.AblationCoarseThresholdResult
		res, err = sim.AblationCoarseThreshold([]float64{0.5, 1, 3, 8, 15, 30})
		if err == nil {
			table = res.Render()
		}
	case "session":
		var res *sim.SessionReliabilityResult
		res, err = sim.SessionReliability(seed, []float64{-10, -8, -6, -4, 0}, or(50))
		if err == nil {
			table = res.Render()
		}
	case "accuracy":
		var res *sim.AccuracySweepResult
		res, err = sim.AccuracySweep(seed, []float64{7, 9, 11, 13, 15, 17}, or(50))
		if err == nil {
			table = res.Render()
		}
	case "coded":
		var res *sim.CodedHitRatesResult
		res, err = sim.CodedHitRates([]byte("00000"))
		if err == nil {
			table = res.Render()
		}
	case "adaptive":
		var res *sim.AdaptiveAccuracyResult
		res, err = sim.AdaptiveAccuracy(seed, []float64{9, 11, 13, 15, 17}, or(25), or(25))
		if err == nil {
			table = res.Render()
		}
	case "roc":
		var res *sim.ROCResult
		res, err = sim.ROC(seed, 13, or(100))
		if err == nil {
			table = res.Render()
			csv = res.CSV()
		}
	case "evasion":
		var res *sim.EvasionResult
		res, err = sim.Evasion(seed, 15, or(50))
		if err == nil {
			table = res.Render()
		}
	case "amc":
		var res *sim.AMCResult
		res, err = sim.AMC(seed, []float64{0, 5, 10, 15, 20}, 2000, or(50))
		if err == nil {
			table = res.Render()
		}
	case "csma":
		var res *sim.CSMAScenarioResult
		res, err = sim.CSMAScenario(seed, []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9}, or(500))
		if err == nil {
			table = res.Render()
		}
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		return err
	}
	fmt.Println(table.Markdown())
	fmt.Printf("(defense default Q = %g)\n\n", emulation.DefaultThreshold)
	if csvPath != "" && csv != "" {
		if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
			return fmt.Errorf("writing CSV: %w", err)
		}
		fmt.Printf("series written to %s\n", csvPath)
	}
	return nil
}
