package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hideseek/internal/obs"
	"hideseek/internal/sim"
)

// runCLI drives run() exactly as main does, capturing both streams.
func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

func TestStdoutIdenticalAcrossWorkers(t *testing.T) {
	ref, _, err := runCLI(t, "table2", "-trials", "5", "-workers", "1")
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, w := range []string{"2", "4"} {
		got, _, err := runCLI(t, "table2", "-trials", "5", "-workers", w)
		if err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
		if got != ref {
			t.Fatalf("stdout differs between -workers 1 and -workers %s:\n%s\nvs\n%s", w, ref, got)
		}
	}
}

func TestTelemetryFlagsLeaveStdoutUntouched(t *testing.T) {
	ref, _, err := runCLI(t, "table2", "-trials", "4")
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	manifest := filepath.Join(t.TempDir(), "run.json")
	got, stderrOut, err := runCLI(t, "table2", "-trials", "4", "-manifest", manifest, "-progress")
	if err != nil {
		t.Fatalf("telemetry run: %v", err)
	}
	if got != ref {
		t.Fatalf("-manifest/-progress changed stdout:\n%s\nvs\n%s", ref, got)
	}
	if !strings.Contains(stderrOut, "table2") {
		t.Errorf("-progress wrote no per-experiment line to stderr: %q", stderrOut)
	}

	m, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Command != "table2" || m.Seed != 1 {
		t.Errorf("manifest identity = (%q, seed %d), want (table2, 1)", m.Command, m.Seed)
	}
	if len(m.Experiments) != 1 || m.Experiments[0].Name != "table2" {
		t.Fatalf("manifest experiments = %+v, want one table2 entry", m.Experiments)
	}
	if m.Experiments[0].Trials <= 0 || m.Experiments[0].TrialsPerSec <= 0 {
		t.Errorf("table2 stats = %+v, want positive trials and trials/s", m.Experiments[0])
	}
	if len(m.Timers) < 3 {
		t.Errorf("manifest carries %d stage timers, want at least 3", len(m.Timers))
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "run.json")
	if _, _, err := runCLI(t, "fig5", "-manifest", manifest); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	m, err := obs.DecodeManifest(data)
	if err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("validate after round trip: %v", err)
	}
}

func TestListEnumeratesRegistry(t *testing.T) {
	out, _, err := runCLI(t, "list")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	reg := sim.Registry()
	if len(lines) != len(reg)+1 { // registry entries + the "all" meta line
		t.Fatalf("list printed %d lines, want %d", len(lines), len(reg)+1)
	}
	for i, e := range reg {
		if !strings.HasPrefix(lines[i], e.Name) {
			t.Errorf("list line %d = %q, want it to lead with %q", i, lines[i], e.Name)
		}
	}
}

func TestCSVForNonFigureExperiment(t *testing.T) {
	csvPath := filepath.Join(t.TempDir(), "table2.csv")
	out, _, err := runCLI(t, "table2", "-trials", "3", "-csv", csvPath)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "series written to "+csvPath) {
		t.Fatalf("stdout missing CSV confirmation:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("CSV file is empty")
	}
}

func TestUnknownSubcommand(t *testing.T) {
	_, _, err := runCLI(t, "nonsense")
	if err == nil || !strings.Contains(err.Error(), "nonsense") {
		t.Fatalf("err = %v, want unknown-subcommand error naming it", err)
	}
	if !strings.Contains(err.Error(), "table1") {
		t.Fatalf("err = %v, want subcommand list derived from registry", err)
	}
}
