package main

import (
	"strings"
	"testing"

	"hideseek/internal/obs"
	"hideseek/internal/stream"
)

func TestWriteLatencySummary(t *testing.T) {
	snap := obs.Snapshot{
		Histograms: map[string]obs.HistogramStats{
			"stream.scan_ns":   {Count: 3, P50: 1_500, P95: 2_000},
			"stream.decode_ns": {Count: 3, P50: 250_000, P95: 400_000},
			"stream.detect_ns": {Count: 0}, // empty stage stays silent
		},
	}
	stats := stream.Stats{Frames: 3, Dropped: 1, DecodeErrors: 2}
	var b strings.Builder
	writeLatencySummary(&b, stats, snap)
	out := b.String()

	for _, want := range []string{
		"3 frames", "1 dropped", "2 decode errors",
		"scan", "decode",
		"1.5µs", "250µs", "400µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "--   detect") {
		t.Errorf("summary reports empty detect stage:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "--") {
			t.Errorf("summary line %q not marked as commentary", line)
		}
	}
}

func TestWriteLatencySummaryNoHistograms(t *testing.T) {
	var b strings.Builder
	writeLatencySummary(&b, stream.Stats{Frames: 1}, obs.Snapshot{})
	if got := strings.Count(b.String(), "\n"); got != 1 {
		t.Fatalf("expected header line only, got %d lines:\n%s", got, b.String())
	}
}
