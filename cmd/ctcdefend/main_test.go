package main

import (
	"strings"
	"testing"

	"hideseek/internal/emulation"
	"hideseek/internal/lora"
	"hideseek/internal/obs"
	"hideseek/internal/stream"
)

// TestLoRaStreamParity: `-proto lora -stream` routes through the generic
// streaming engine; its verdicts must agree with single-shot mode
// (receiver + detector on the same channel-applied waveforms) on payload
// and classification for every frame.
func TestLoRaStreamParity(t *testing.T) {
	payload := []byte("00000")
	observed, err := lora.NewTransmitter().TransmitPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Emulate(observed)
	if err != nil {
		t.Fatal(err)
	}

	const frames = 2
	wfs, capture, err := loraStreamCapture(observed, res.Emulated4M, 15, false, frames, 9)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, stats, err := loraStreamVerdicts(capture, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2*frames || stats.Frames != 2*frames {
		t.Fatalf("stream found %d verdicts / %d frames, want %d", len(verdicts), stats.Frames, 2*frames)
	}

	rx, err := lora.NewReceiver(lora.ReceiverConfig{})
	if err != nil {
		t.Fatal(err)
	}
	det, err := lora.NewDetector(lora.DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, wf := range wfs {
		rec, err := rx.Receive(wf)
		if err != nil {
			t.Fatalf("single-shot frame %d: %v", i, err)
		}
		single, err := det.AnalyzeReception(rec)
		if err != nil {
			t.Fatal(err)
		}
		v := verdicts[i]
		if !v.Decided() {
			t.Fatalf("stream frame %d undecided: dropped=%v err=%q", i, v.Dropped, v.Err)
		}
		if v.Attack != single.Attack || string(v.PSDU) != string(rec.Payload) {
			t.Errorf("frame %d: stream (attack=%v payload=%q) vs single-shot (attack=%v payload=%q)",
				i, v.Attack, v.PSDU, single.Attack, rec.Payload)
		}
		if wantAttack := i >= frames; single.Attack != wantAttack {
			t.Errorf("frame %d: single-shot attack=%v, want %v", i, single.Attack, wantAttack)
		}
	}
}

func TestWriteLatencySummary(t *testing.T) {
	snap := obs.Snapshot{
		Histograms: map[string]obs.HistogramStats{
			"stream.scan_ns":   {Count: 3, P50: 1_500, P95: 2_000},
			"stream.decode_ns": {Count: 3, P50: 250_000, P95: 400_000},
			"stream.detect_ns": {Count: 0}, // empty stage stays silent
		},
	}
	stats := stream.Stats{Frames: 3, Dropped: 1, DecodeErrors: 2}
	var b strings.Builder
	writeLatencySummary(&b, stats, snap)
	out := b.String()

	for _, want := range []string{
		"3 frames", "1 dropped", "2 decode errors",
		"scan", "decode",
		"1.5µs", "250µs", "400µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "--   detect") {
		t.Errorf("summary reports empty detect stage:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "--") {
			t.Errorf("summary line %q not marked as commentary", line)
		}
	}
}

func TestWriteLatencySummaryNoHistograms(t *testing.T) {
	var b strings.Builder
	writeLatencySummary(&b, stream.Stats{Frames: 1}, obs.Snapshot{})
	if got := strings.Count(b.String(), "\n"); got != 1 {
		t.Fatalf("expected header line only, got %d lines:\n%s", got, b.String())
	}
}
