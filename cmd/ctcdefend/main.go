// Command ctcdefend demonstrates the waveform-emulation defenses: it
// receives one authentic and one emulated waveform over the configured
// channel and prints each one's detection statistics and verdict. -proto
// selects the victim PHY: zigbee (constellation cumulants + D²E, the
// default) or lora (dechirp off-peak energy ratio, the Wi-Lo defense).
// -stream n replays n frames per class: zigbee through the k-of-n
// cumulant monitor, lora through the generic streaming engine.
//
// Usage:
//
//	ctcdefend [-proto zigbee|lora] [-payload text] [-snr dB] [-threshold q]
//	          [-real] [-stream n] [-in capture.cf32] [-seed n]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"hideseek/internal/channel"
	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/lora"
	"hideseek/internal/obs"
	"hideseek/internal/phy"
	"hideseek/internal/stream"
	"hideseek/internal/zigbee"

	_ "hideseek/internal/phy/loraphy"
	_ "hideseek/internal/phy/zigbeephy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ctcdefend:", err)
		os.Exit(1)
	}
}

func run() error {
	proto := flag.String("proto", "zigbee", "victim protocol: zigbee or lora")
	payload := flag.String("payload", "00000", "APP-layer payload")
	snr := flag.Float64("snr", 15, "AWGN SNR in dB")
	threshold := flag.Float64("threshold", 0, "decision threshold Q (0 = protocol default)")
	realEnv := flag.Bool("real", false, "add multipath, Doppler and CFO (real environment, Sec. VI-C)")
	streamN := flag.Int("stream", 0, "stream this many frames per class: zigbee runs the k-of-n monitor, lora the generic engine (0 = single-shot)")
	in := flag.String("in", "", "classify a captured 4 MS/s waveform file (.cf32 or .csv) instead of generated ones")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *in != "" {
		return classifyFile(*in, *proto, *threshold, *realEnv)
	}
	switch *proto {
	case "zigbee":
	case "lora":
		return runLoRa(*payload, *snr, *threshold, *realEnv, *seed, *streamN)
	default:
		return fmt.Errorf("-proto %q not supported (registered: %v)", *proto, phy.Protocols())
	}

	tx := zigbee.NewTransmitter()
	observed, err := tx.TransmitPSDU([]byte(*payload))
	if err != nil {
		return err
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		return err
	}
	res, err := em.Emulate(observed)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var ch channel.Channel
	awgn, err := channel.NewAWGN(*snr, rng)
	if err != nil {
		return err
	}
	ch = awgn
	if *realEnv {
		mp, err := channel.NewRicianMultipath(3, 0.35, 8, rng)
		if err != nil {
			return err
		}
		doppler, err := channel.NewDopplerPhaseNoise(2e-4, rng)
		if err != nil {
			return err
		}
		cfo, err := channel.NewCFO(100, zigbee.SampleRate, rng.Float64()*6.28)
		if err != nil {
			return err
		}
		ch, err = channel.NewChain(mp, doppler, cfo, awgn)
		if err != nil {
			return err
		}
	}

	rx, err := zigbee.NewReceiver(zigbee.ReceiverConfig{SyncThreshold: 0.3})
	if err != nil {
		return err
	}
	det, err := emulation.NewDetector(emulation.DefenseConfig{
		Threshold:  *threshold,
		RemoveMean: *realEnv,
		UseAbsC40:  *realEnv,
	})
	if err != nil {
		return err
	}

	analyze := func(name string, wave []complex128) error {
		rec, err := rx.Receive(ch.Apply(wave))
		if err != nil {
			fmt.Printf("%-9s reception failed: %v\n", name, err)
			return nil
		}
		v, err := det.AnalyzeReception(rec)
		if err != nil {
			return err
		}
		verdict := "AUTHENTIC (H0)"
		if v.Attack {
			verdict = "ATTACK (H1)"
		}
		fmt.Printf("%-9s Ĉ40 = %+.4f%+.4fi  Ĉ42 = %+.4f  D²E = %.4f  → %s\n",
			name, real(v.Cumulants.C40), imag(v.Cumulants.C40), v.Cumulants.C42, v.DistanceSquared, verdict)
		return nil
	}

	fmt.Printf("channel: SNR %g dB, real environment: %v, Q = %g\n", *snr, *realEnv, det.Threshold())
	if *streamN > 0 {
		return runStream(rx, ch, observed, res.Emulated4M, *streamN, emulation.DefenseConfig{
			Threshold:  *threshold,
			RemoveMean: *realEnv,
			UseAbsC40:  *realEnv,
		})
	}
	if err := analyze("authentic", observed); err != nil {
		return err
	}
	return analyze("emulated", res.Emulated4M)
}

// runLoRa is the Wi-Lo demo: authentic CSS frames and their WiFi-emulated
// counterparts through the channel, classified by the dechirp
// off-peak-energy defense — single-shot by default, or streamN frames per
// class through the generic streaming engine.
func runLoRa(payload string, snr, threshold float64, realEnv bool, seed int64, streamN int) error {
	tx := lora.NewTransmitter()
	observed, err := tx.TransmitPayload([]byte(payload))
	if err != nil {
		return err
	}
	em, err := emulation.NewEmulator(emulation.AttackConfig{})
	if err != nil {
		return err
	}
	res, err := em.Emulate(observed)
	if err != nil {
		return err
	}
	if streamN > 0 {
		return runLoRaStream(observed, res.Emulated4M, snr, threshold, realEnv, streamN, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	ch, err := buildChannel(snr, realEnv, lora.SampleRate, rng)
	if err != nil {
		return err
	}
	rx, err := lora.NewReceiver(lora.ReceiverConfig{})
	if err != nil {
		return err
	}
	det, err := lora.NewDetector(lora.DetectorConfig{Threshold: threshold, WidePeak: realEnv})
	if err != nil {
		return err
	}
	analyze := func(name string, wave []complex128) error {
		rec, err := rx.Receive(ch.Apply(wave))
		if err != nil {
			fmt.Printf("%-9s reception failed: %v\n", name, err)
			return nil
		}
		v, err := det.AnalyzeReception(rec)
		if err != nil {
			return err
		}
		verdict := "AUTHENTIC (H0)"
		if v.Attack {
			verdict = "ATTACK (H1)"
		}
		fmt.Printf("%-9s payload %q  symbols = %d  D² = %.4f  → %s\n",
			name, rec.Payload, v.Symbols, v.DistanceSquared, verdict)
		return nil
	}
	fmt.Printf("lora channel: SNR %g dB, real environment: %v, Q = %g\n", snr, realEnv, det.Threshold())
	if err := analyze("authentic", observed); err != nil {
		return err
	}
	return analyze("emulated", res.Emulated4M)
}

// loraStreamCapture renders the streaming demo's input: frames authentic
// CSS frames followed by frames emulated ones, each through its own
// channel realization, embedded in a noise-floor capture. The
// channel-applied waveforms are returned alongside so single-shot
// classification can run on exactly the same inputs (the parity test).
func loraStreamCapture(observed, emulated []complex128, snr float64, realEnv bool, frames int, seed int64) ([][]complex128, []complex128, error) {
	rng := rand.New(rand.NewSource(seed))
	wfs := make([][]complex128, 0, 2*frames)
	for _, wave := range [][]complex128{observed, emulated} {
		for i := 0; i < frames; i++ {
			ch, err := buildChannel(snr, realEnv, lora.SampleRate, rng)
			if err != nil {
				return nil, nil, err
			}
			wfs = append(wfs, ch.Apply(wave))
		}
	}
	capture, err := stream.BuildCapture(rng, 1e-3, 500, wfs...)
	if err != nil {
		return nil, nil, err
	}
	return wfs, capture, nil
}

// loraStreamVerdicts classifies a capture through the generic streaming
// engine with the registry-built lora pipeline — the same path hideseekd
// serves, where the calibration stage hooks in.
func loraStreamVerdicts(capture []complex128, threshold float64, realEnv bool) ([]stream.Verdict, stream.Stats, error) {
	pipe, err := phy.Build("lora", phy.Options{Threshold: threshold, RealEnv: realEnv})
	if err != nil {
		return nil, stream.Stats{}, err
	}
	var verdicts []stream.Verdict
	stats, err := stream.Process(context.Background(), stream.Config{Pipelines: []*phy.Pipeline{pipe}},
		stream.NewSliceSource(capture), func(v stream.Verdict) {
			verdicts = append(verdicts, v)
		})
	return verdicts, stats, err
}

// runLoRaStream prints the generic-engine verdict stream for the demo
// capture: the first half of the frames is authentic, the second half
// emulated.
func runLoRaStream(observed, emulated []complex128, snr, threshold float64, realEnv bool, frames int, seed int64) error {
	_, capture, err := loraStreamCapture(observed, emulated, snr, realEnv, frames, seed)
	if err != nil {
		return err
	}
	verdicts, stats, err := loraStreamVerdicts(capture, threshold, realEnv)
	if err != nil {
		return err
	}
	fmt.Printf("lora streaming engine: %d authentic frames, then %d emulated frames\n", frames, frames)
	for i, v := range verdicts {
		if !v.Decided() {
			fmt.Printf("frame %2d @%d: not classified (%s)\n", i, v.Offset, v.Err)
			continue
		}
		verdict := "AUTHENTIC (H0)"
		if v.Attack {
			verdict = "ATTACK (H1)"
		}
		fmt.Printf("frame %2d @%d: payload %q  D² = %.4f  → %s\n", i, v.Offset, v.PSDU, v.DistanceSquared, verdict)
	}
	if stats.Frames == 0 {
		return fmt.Errorf("no decodable lora frame in the generated capture")
	}
	writeLatencySummary(os.Stderr, stats, obs.Snap())
	return nil
}

// buildChannel assembles the demo channel: AWGN, optionally preceded by
// the real-environment impairments (multipath, Doppler, CFO).
func buildChannel(snr float64, realEnv bool, sampleRate float64, rng *rand.Rand) (channel.Channel, error) {
	awgn, err := channel.NewAWGN(snr, rng)
	if err != nil {
		return nil, err
	}
	if !realEnv {
		return awgn, nil
	}
	mp, err := channel.NewRicianMultipath(3, 0.35, 8, rng)
	if err != nil {
		return nil, err
	}
	doppler, err := channel.NewDopplerPhaseNoise(2e-4, rng)
	if err != nil {
		return nil, err
	}
	cfo, err := channel.NewCFO(100, sampleRate, rng.Float64()*6.28)
	if err != nil {
		return nil, err
	}
	return channel.NewChain(mp, doppler, cfo, awgn)
}

// classifyFile runs the detector on a captured waveform (SDR interop).
// cf32 captures stream through the chunked pipeline — the file is never
// loaded whole, so arbitrarily long SDR recordings classify in bounded
// memory and every frame in the capture gets its own verdict line. CSV
// (a debug format with no incremental reader) still slurps.
func classifyFile(path, proto string, threshold float64, realEnv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var src stream.Source
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		wave, err := iq.ReadCSV(f, 50_000_000)
		if err != nil {
			return err
		}
		src = stream.NewSliceSource(wave)
	} else {
		src = iq.NewReaderCF32(f)
	}
	opts := phy.Options{Threshold: threshold, RealEnv: realEnv}
	if proto == "zigbee" {
		opts.SyncThreshold = 0.3 // the CLI's historical zigbee operating point
	}
	pipe, err := phy.Build(proto, opts)
	if err != nil {
		return fmt.Errorf("-proto: %w (registered: %v)", err, phy.Protocols())
	}
	cfg := stream.Config{Pipelines: []*phy.Pipeline{pipe}}
	stats, err := stream.Process(context.Background(), cfg, src, func(v stream.Verdict) {
		if !v.Decided() {
			fmt.Printf("%s @%d: frame not classified (%s)\n", path, v.Offset, v.Err)
			return
		}
		verdict := "AUTHENTIC (H0)"
		if v.Attack {
			verdict = "ATTACK (H1)"
		}
		if v.Proto == "lora" {
			fmt.Printf("%s @%d: payload %q, D² = %.4f → %s\n",
				path, v.Offset, v.PSDU, v.DistanceSquared, verdict)
			return
		}
		fmt.Printf("%s @%d: PSDU %q, Ĉ40 = %+.4f%+.4fi, Ĉ42 = %+.4f, D²E = %.4f → %s\n",
			path, v.Offset, v.PSDU, v.C40Re, v.C40Im, v.C42, v.DistanceSquared, verdict)
	})
	if err != nil {
		return err
	}
	if stats.Frames == 0 {
		return fmt.Errorf("no decodable %s frame in %s (%d samples scanned)", proto, path, stats.Samples)
	}
	writeLatencySummary(os.Stderr, stats, obs.Snap())
	return nil
}

// writeLatencySummary prints the end-of-run per-stage latency digest for
// a capture classification: frame and drop counts from the session's
// Stats, p50/p95 scan/decode/detect latency from the process-wide
// instrument snapshot. It goes to stderr so piped verdict output stays
// machine-readable.
func writeLatencySummary(w io.Writer, stats stream.Stats, snap obs.Snapshot) {
	fmt.Fprintf(w, "-- latency summary: %d frames, %d dropped, %d decode errors, %d detect errors\n",
		stats.Frames, stats.Dropped, stats.DecodeErrors, stats.DetectErrors)
	for _, stage := range []struct{ label, hist string }{
		{"scan", "stream.scan_ns"},
		{"decode", "stream.decode_ns"},
		{"detect", "stream.detect_ns"},
	} {
		h, ok := snap.Histograms[stage.hist]
		if !ok || h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "--   %-6s p50 %-10s p95 %-10s (n=%d)\n",
			stage.label, fmtNS(h.P50), fmtNS(h.P95), h.Count)
	}
}

// fmtNS renders a nanosecond quantile as a human duration.
func fmtNS(ns float64) string {
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}

// runStream feeds alternating authentic frames followed by an attack burst
// through the k-of-n monitor.
func runStream(rx *zigbee.Receiver, ch channel.Channel, authentic, emulated []complex128, frames int, cfg emulation.DefenseConfig) error {
	sd, err := emulation.NewStreamDetector(cfg, 3, 5)
	if err != nil {
		return err
	}
	feed := func(label string, wave []complex128, n int) error {
		for i := 0; i < n; i++ {
			rec, err := rx.Receive(ch.Apply(wave))
			if err != nil {
				fmt.Printf("%s frame %d: reception failed (%v)\n", label, i, err)
				continue
			}
			verdict, alarm, err := sd.Observe(rec)
			if err != nil {
				return err
			}
			marker := ""
			if verdict.Attack {
				marker = " [flagged]"
			}
			if alarm {
				marker += " *** ALARM ***"
			}
			fmt.Printf("%s frame %2d: D²E = %.4f%s\n", label, i, verdict.DistanceSquared, marker)
			if alarm {
				return nil
			}
		}
		return nil
	}
	fmt.Printf("streaming monitor (3-of-5): %d authentic frames, then attack frames\n", frames)
	if err := feed("authentic", authentic, frames); err != nil {
		return err
	}
	return feed("attack   ", emulated, frames)
}
