// Command spectrum computes a Welch power spectral density. The input is
// either a cf32/CSV waveform file (GNU Radio interop via internal/iq) or a
// generated waveform (-gen zigbee|emulated). Output is a frequency,power
// CSV on stdout plus a band-occupancy summary on stderr.
//
// Usage:
//
//	spectrum -gen emulated -rate 4e6 > psd.csv
//	spectrum -in capture.cf32 -rate 4e6 -segment 512 > psd.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hideseek/internal/dsp"
	"hideseek/internal/emulation"
	"hideseek/internal/iq"
	"hideseek/internal/zigbee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spectrum:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input waveform file (.cf32 or .csv)")
	gen := flag.String("gen", "", "generate a waveform instead: zigbee or emulated")
	payload := flag.String("payload", "0000000017", "payload for generated waveforms")
	rate := flag.Float64("rate", zigbee.SampleRate, "sample rate in Hz")
	segment := flag.Int("segment", 256, "Welch segment length")
	flag.Parse()

	wave, err := loadWaveform(*in, *gen, *payload)
	if err != nil {
		return err
	}
	psd, err := dsp.WelchPSD(wave, *segment, dsp.Hann)
	if err != nil {
		return err
	}

	// CSV sorted by signed frequency.
	type binRow struct {
		f float64
		p float64
	}
	rows := make([]binRow, len(psd))
	for k, p := range psd {
		f, err := dsp.BinFrequency(k, len(psd), *rate)
		if err != nil {
			return err
		}
		rows[k] = binRow{f: f, p: p}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].f < rows[b].f })
	fmt.Println("frequency_hz,power")
	for _, r := range rows {
		fmt.Printf("%g,%g\n", r.f, r.p)
	}

	bw99, err := dsp.OccupiedBandwidth(psd, *rate, 0.99)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "samples: %d, 99%% occupied bandwidth: %.3f MHz\n", len(wave), bw99/1e6)
	return nil
}

func loadWaveform(path, gen, payload string) ([]complex128, error) {
	switch {
	case path != "" && gen != "":
		return nil, fmt.Errorf("-in and -gen are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		const limit = 50_000_000
		if len(path) > 4 && path[len(path)-4:] == ".csv" {
			return iq.ReadCSV(f, limit)
		}
		return iq.ReadCF32(f, limit)
	case gen == "zigbee":
		return zigbee.NewTransmitter().TransmitPSDU([]byte(payload))
	case gen == "emulated":
		obs, err := zigbee.NewTransmitter().TransmitPSDU([]byte(payload))
		if err != nil {
			return nil, err
		}
		em, err := emulation.NewEmulator(emulation.AttackConfig{})
		if err != nil {
			return nil, err
		}
		res, err := em.Emulate(obs)
		if err != nil {
			return nil, err
		}
		return res.Emulated4M, nil
	default:
		return nil, fmt.Errorf("provide -in FILE or -gen zigbee|emulated")
	}
}
